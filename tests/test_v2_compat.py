"""SSLv2-compatibility ClientHello (how era browsers opened connections)."""

import pytest

from repro import perf
from repro.crypto.rand import PseudoRandom
from repro.ssl import DES_CBC3_SHA, SslClient, SslServer, TLS1_VERSION
from repro.ssl.errors import DecodeError, SslError
from repro.ssl.handshake import (
    build_v2_client_hello, parse_v2_client_hello, v2_record,
)
from repro.ssl.loopback import pump
from repro.ssl.record import ContentType, RecordLayer


class TestV2Message:
    def test_build_parse_roundtrip(self):
        msg = build_v2_client_hello(0x0300, (0x0A, 0x2F), b"C" * 24)
        hello = parse_v2_client_hello(msg)
        assert hello.version == 0x0300
        assert hello.cipher_suites == (0x0A, 0x2F)
        assert hello.client_random == (b"C" * 24).rjust(32, b"\x00")
        assert hello.session_id == b""

    def test_challenge_length_bounds(self):
        with pytest.raises(ValueError):
            build_v2_client_hello(0x0300, (0x0A,), b"short")
        with pytest.raises(ValueError):
            build_v2_client_hello(0x0300, (0x0A,), b"x" * 33)

    def test_empty_suites_rejected(self):
        with pytest.raises(ValueError):
            build_v2_client_hello(0x0300, (), b"C" * 16)

    def test_v2_only_suites_filtered(self):
        # A 3-byte v2-native cipher code (> 0xFFFF) must be dropped; if
        # nothing v3-compatible remains, the hello is rejected.
        msg = bytearray(build_v2_client_hello(0x0300, (0x0A,), b"C" * 16))
        msg[9] = 0x07  # turn 0x00000A into 0x07000A (v2-native code)
        with pytest.raises(DecodeError):
            parse_v2_client_hello(bytes(msg))

    def test_record_header(self):
        rec = v2_record(b"hello")
        assert rec[0] & 0x80
        assert (int.from_bytes(rec[:2], "big") & 0x7FFF) == 5

    def test_malformed_spec_length(self):
        msg = bytearray(build_v2_client_hello(0x0300, (0x0A,), b"C" * 16))
        msg[3:5] = (4).to_bytes(2, "big")  # not a multiple of 3
        with pytest.raises(DecodeError):
            parse_v2_client_hello(bytes(msg))


class TestRecordLayerV2:
    def test_v2_record_detected_first(self):
        rl = RecordLayer()
        msg = build_v2_client_hello(0x0300, (0x0A,), b"C" * 16)
        records = rl.feed(v2_record(msg))
        assert records == [(ContentType.V2_CLIENT_HELLO, msg)]

    def test_v2_after_v3_rejected(self):
        rl = RecordLayer()
        rl.feed(rl.emit(ContentType.HANDSHAKE, b"x"))
        msg = build_v2_client_hello(0x0300, (0x0A,), b"C" * 16)
        # The MSB-set byte now reads as an invalid v3 content type.
        with pytest.raises(SslError):
            rl.feed(v2_record(msg))

    def test_partial_v2_record_buffers(self):
        rl = RecordLayer()
        msg = build_v2_client_hello(0x0300, (0x0A,), b"C" * 16)
        wire = v2_record(msg)
        assert rl.feed(wire[:5]) == []
        assert rl.feed(wire[5:]) == [(ContentType.V2_CLIENT_HELLO, msg)]


class TestEndToEnd:
    @pytest.mark.parametrize("version", [0x0300, TLS1_VERSION],
                             ids=["sslv3", "tls10"])
    def test_v2_hello_opens_v3_handshake(self, identity512, version):
        key, cert = identity512
        sp, cp = perf.Profiler(), perf.Profiler()
        with perf.activate(sp):
            server = SslServer(key, cert, suites=(DES_CBC3_SHA,),
                               rng=PseudoRandom(b"v2-s"))
        with perf.activate(cp):
            client = SslClient(suites=(DES_CBC3_SHA,), version=version,
                               use_v2_hello=True,
                               rng=PseudoRandom(b"v2-c"))
            client.start_handshake()
        pump(client, server, cp, sp)
        assert client.handshake_complete and server.handshake_complete
        assert server.version == version
        with perf.activate(cp):
            client.write(b"v2-opened channel")
        with perf.activate(sp):
            server.receive(client.pending_output())
            assert server.read() == b"v2-opened channel"

    def test_v2_hello_rejected_on_renegotiation(self, identity512):
        """The v2 compatibility form is only legal as the first message."""
        key, cert = identity512
        sp, cp = perf.Profiler(), perf.Profiler()
        with perf.activate(sp):
            server = SslServer(key, cert, suites=(DES_CBC3_SHA,),
                               rng=PseudoRandom(b"v2r-s"))
        with perf.activate(cp):
            client = SslClient(suites=(DES_CBC3_SHA,),
                               rng=PseudoRandom(b"v2r-c"))
            client.start_handshake()
        pump(client, server, cp, sp)
        msg = build_v2_client_hello(0x0300, (DES_CBC3_SHA.suite_id,),
                                    b"C" * 16)
        with pytest.raises(SslError), perf.activate(sp):
            server.receive(v2_record(msg))

    def test_client_to_v2_hello_raises(self, identity512):
        """Clients must never receive a v2 hello."""
        client = SslClient()
        client.start_handshake()
        msg = build_v2_client_hello(0x0300, (0x0A,), b"C" * 16)
        with pytest.raises(SslError):
            client.receive(v2_record(msg))
