"""Overload anatomy: adversarial traffic, admission control, suite
downgrade -- and the accounting contract under abandonment.

The critical invariant (the ISSUE's satellite): a handshake-flood client
that disconnects mid-key-exchange must *charge the server's RSA decrypt
to the profile* (the attack's entire point is burning that Table 2
cost), increment ``handshakes_abandoned``, never leak a ``ClientPool``
or ``SessionCache`` entry, and fold bit-identically through the
process-parallel backend.
"""

from __future__ import annotations

import pytest

from repro import perf
from repro.crypto import rsa
from repro.crypto.rand import PseudoRandom
from repro.perf import baseline
from repro.ssl import DES_CBC3_SHA, SslClient, SslServer
from repro.ssl.ciphersuites import RC4_MD5
from repro.ssl.loopback import pump
from repro.webserver import SHARED, ServerFarm
from repro.webserver.overload import (
    ABANDON_HELLO, ABANDON_MID_KX, AcceptQueue, AdmissionPolicy,
    AdversarialWorkload, DeadlineShedPolicy, DropTailPolicy, PressureSignal,
    ResumptionPreferredPolicy, SuitePolicy, suite_cost_per_kb,
)
from repro.webserver.simulator import WebServerSimulator
from repro.webserver.workload import Request, RequestWorkload


def make_sim(identity, **kwargs):
    key, cert = identity
    rsa.reset_error_tables()
    return WebServerSimulator(key=key, cert=cert, use_crt=True,
                              seed=b"overload-test", **kwargs)


# ---------------------------------------------------------------------------
# Abandonment accounting
# ---------------------------------------------------------------------------

class TestAbandonmentAccounting:
    def test_mid_kx_burns_rsa_and_counts(self, identity512):
        """A mid-key-exchange disconnect charges the server's RSA decrypt
        and lands in the abandoned counters, never the completed ones."""
        sim = make_sim(identity512)
        workload = AdversarialWorkload.fixed(
            1024, seed=b"mid-kx", flood_rate=1.0, flood_mode="mid_kx",
            mean_gap_rounds=0.0)
        result = sim.run(workload, 3)
        assert result.handshakes_abandoned == 3
        assert result.requests_abandoned == 3
        assert result.requests_completed == 0
        assert result.failures == 0
        # The server processed the ClientKeyExchange before the client
        # vanished: the RSA decrypt cycles are in the profile.
        assert result.profiler.region_cycles("get_client_kx") > 0

    def test_hello_abandon_burns_no_rsa(self, identity512):
        """A post-ClientHello disconnect never reaches the key exchange:
        abandoned handshakes counted, zero RSA decrypt charged."""
        sim = make_sim(identity512)
        workload = AdversarialWorkload.fixed(
            1024, seed=b"hello", flood_rate=1.0, flood_mode="hello",
            mean_gap_rounds=0.0)
        result = sim.run(workload, 3)
        assert result.handshakes_abandoned == 3
        assert result.requests_completed == 0
        assert result.failures == 0
        assert result.profiler.region_cycles("get_client_kx") == 0
        # The hello flight was processed (and the ServerHello flight
        # built -- the wasted work the flood aims for).
        assert result.profiler.region_cycles("get_client_hello") > 0

    @pytest.mark.parametrize("mode", [ABANDON_HELLO, ABANDON_MID_KX])
    def test_no_state_leak(self, identity512, mode):
        """An abandoned handshake leaves nothing behind: no session-cache
        entry, no client-pool entry, no completed-handshake latency."""
        sim = make_sim(identity512, client_pool_capacity=8)
        workload = AdversarialWorkload.fixed(
            1024, seed=b"leak", clients=4, flood_rate=1.0, flood_mode=mode,
            mean_gap_rounds=0.0)
        result = sim.run(workload, 4)
        assert result.handshakes_abandoned == 4
        assert len(sim._session_cache) == 0
        assert len(sim._client_sessions) == 0
        assert result.handshake_latencies == []

    def test_mixed_stream_accounting_is_disjoint(self, identity512):
        """Floods and completing connections split the stream exactly:
        completed + abandoned == offered, with latencies only for the
        completers."""
        sim = make_sim(identity512)
        workload = AdversarialWorkload.fixed(
            1024, seed=b"mixed", flood_rate=0.5, mean_gap_rounds=0.0)
        n = 8
        result = sim.run(workload, n)
        assert result.handshakes_abandoned > 0
        assert result.requests_completed > 0
        assert (result.requests_completed
                + result.requests_abandoned) == n
        assert len(result.handshake_latencies) == result.requests_completed
        assert result.failures == 0


# ---------------------------------------------------------------------------
# Parallel bit-identity under abandonment (the satellite's second half)
# ---------------------------------------------------------------------------

def overload_signature(result) -> str:
    """Canonical JSON over everything the overload determinism contract
    covers -- the farm signature plus every anatomy counter."""
    sig = baseline.capture(
        result.merged_profiler(), scenario="overload-parallel-test",
        extra={
            "requests_completed": result.requests_completed,
            "failures": result.failures,
            "resumed_handshakes": result.resumed_handshakes,
            "cross_worker_resumptions": result.cross_worker_resumptions,
            "wire_bytes": result.wire_bytes,
            "per_worker_cycles": [r.profiler.total_cycles()
                                  for r in result.results],
            "shard_stats": result.shard_stats,
            "offered_connections": result.offered_connections,
            "shed_queue_full": result.shed_queue_full,
            "shed_deadline": result.shed_deadline,
            "requests_shed": result.requests_shed,
            "peak_queue_depth": result.peak_queue_depth,
            "queue_wait_rounds_total": result.queue_wait_rounds_total,
            "connections_downgraded": result.connections_downgraded,
            "handshakes_abandoned": result.handshakes_abandoned,
            "requests_abandoned": result.requests_abandoned,
            "renegotiations_served": result.renegotiations_served,
            "handshake_latencies": result.handshake_latencies,
        })
    return baseline.canonical_json(sig)


def run_adversarial(identity, *, parallel):
    key, cert = identity
    rsa.reset_error_tables()
    farm = ServerFarm(
        2, topology=SHARED, key=key, cert=cert, use_crt=True,
        admission=DeadlineShedPolicy(max_queue=3, deadline_rounds=4),
        suite_policy=SuitePolicy(primary=DES_CBC3_SHA, downgrade=RC4_MD5,
                                 queue_high=3),
        client_suites=(DES_CBC3_SHA, RC4_MD5))
    workload = AdversarialWorkload.fixed(
        2048, resumption_rate=0.5, seed=b"par-overload", clients=4,
        mean_gap_rounds=1.0, flood_rate=0.3, reneg_rate=0.2)
    return farm.run(workload, 12, concurrency_per_worker=2,
                    parallel=parallel)


class TestParallelBitIdentity:
    def test_abandonment_folds_identically(self, identity512):
        serial = run_adversarial(identity512, parallel=0)
        # The run must actually exercise the paths under test.
        assert serial.handshakes_abandoned > 0
        assert serial.connections_shed > 0
        parallel = run_adversarial(identity512, parallel=2)
        assert parallel.backend == "parallel:2"
        assert overload_signature(parallel) == overload_signature(serial)


# ---------------------------------------------------------------------------
# Accept queue + admission policies
# ---------------------------------------------------------------------------

def group(round_=0, resumable=False):
    return [Request(path="/x", size_bytes=64, resumable=resumable,
                    arrival_round=round_)]


class TestAcceptQueue:
    def test_degenerates_to_fifo(self):
        groups = [group(), group(), group()]
        queue = AcceptQueue(groups, None)
        queue.begin_round()
        assert queue.offered_connections == 3
        assert [queue.pop() for _ in range(3)] == groups
        assert not queue

    def test_arrival_rounds_pace_release(self):
        queue = AcceptQueue([group(0), group(2), group(2)], None)
        queue.begin_round()
        assert queue.depth() == 1
        queue.begin_round()
        assert queue.depth() == 1
        queue.begin_round()
        assert queue.depth() == 3
        assert queue.offered_connections == 3

    def test_wait_rounds_accumulate(self):
        queue = AcceptQueue([group(0)], None)
        queue.begin_round()
        queue.begin_round()
        queue.begin_round()
        queue.pop()
        assert queue.queue_wait_rounds_total == 2

    def test_drop_tail_sheds_at_full_queue(self):
        queue = AcceptQueue([group() for _ in range(5)], DropTailPolicy(2))
        queue.begin_round()
        assert queue.depth() == 2
        assert queue.shed_queue_full == 3
        assert queue.requests_shed == 3
        assert queue.offered_connections == 5
        assert queue.peak_queue_depth == 2

    def test_deadline_sheds_stale_entries(self):
        policy = DeadlineShedPolicy(max_queue=8, deadline_rounds=1)
        queue = AcceptQueue([group(0), group(3)], policy)
        for _ in range(4):
            queue.begin_round()
        # The round-0 arrival outwaited its deadline; the round-3 one is
        # fresh.
        assert queue.shed_deadline == 1
        assert queue.depth() == 1

    def test_resumption_preferred_evicts_full_handshake(self):
        policy = ResumptionPreferredPolicy(2)
        queue = AcceptQueue(
            [group(), group(), group(resumable=True)], policy)
        queue.begin_round()
        assert queue.depth() == 2
        assert queue.shed_queue_full == 1
        # The survivor set prefers the resuming client.
        assert any(g[0].resumable for g, _ in queue._queue)

    def test_resumption_preferred_drops_full_handshake_arrival(self):
        policy = ResumptionPreferredPolicy(1)
        queue = AcceptQueue([group(resumable=True), group()], policy)
        queue.begin_round()
        assert queue.depth() == 1
        assert queue.head()[0].resumable

    def test_base_policy_accepts_everything(self):
        queue = AcceptQueue([group() for _ in range(4)], AdmissionPolicy())
        queue.begin_round()
        assert queue.depth() == 4
        assert queue.connections_shed == 0


# ---------------------------------------------------------------------------
# Suite downgrade engine
# ---------------------------------------------------------------------------

class TestSuitePolicy:
    def test_flips_order_under_pressure(self):
        policy = SuitePolicy(primary=DES_CBC3_SHA, downgrade=RC4_MD5,
                             queue_high=4)
        calm = PressureSignal(queue_depth=1, active=2, slots=4, round=0)
        hot = PressureSignal(queue_depth=4, active=4, slots=4, round=9)
        assert policy.suites_for(calm) == (DES_CBC3_SHA, RC4_MD5)
        assert policy.suites_for(hot) == (RC4_MD5, DES_CBC3_SHA)
        assert not policy.under_pressure(calm)
        assert policy.under_pressure(hot)

    def test_payoff_priced_from_modeled_kernels(self):
        """The decision table is the repo's own Table 11/12 kernel costs:
        RC4/MD5 must come out several times cheaper than 3DES/SHA."""
        policy = SuitePolicy(primary=DES_CBC3_SHA, downgrade=RC4_MD5)
        assert policy.payoff_ratio() > 3.0
        assert suite_cost_per_kb(DES_CBC3_SHA) > suite_cost_per_kb(RC4_MD5)

    def test_rejects_degenerate_config(self):
        with pytest.raises(ValueError):
            SuitePolicy(primary=RC4_MD5, downgrade=RC4_MD5)
        with pytest.raises(ValueError):
            SuitePolicy(queue_high=0)

    def test_server_hook_steers_selection(self, identity512):
        """The SslServer suite_policy hook: same server preference, but
        the hook's override decides the negotiated suite."""
        key, cert = identity512

        def prefer_cheap(offered):
            return (RC4_MD5, DES_CBC3_SHA)

        sp, cp = perf.Profiler(), perf.Profiler()
        with perf.activate(sp):
            server = SslServer(key, cert,
                               suites=(DES_CBC3_SHA, RC4_MD5),
                               rng=PseudoRandom(b"hook-s"),
                               suite_policy=prefer_cheap)
        with perf.activate(cp):
            client = SslClient(suites=(DES_CBC3_SHA, RC4_MD5),
                               rng=PseudoRandom(b"hook-c"))
            client.start_handshake()
        pump(client, server, cp, sp)
        assert server.handshake_complete
        assert server.cipher_suite.suite_id == RC4_MD5.suite_id

    def test_server_hook_none_keeps_preference(self, identity512):
        key, cert = identity512
        sp, cp = perf.Profiler(), perf.Profiler()
        with perf.activate(sp):
            server = SslServer(key, cert,
                               suites=(DES_CBC3_SHA, RC4_MD5),
                               rng=PseudoRandom(b"nohook-s"),
                               suite_policy=lambda offered: None)
        with perf.activate(cp):
            client = SslClient(suites=(DES_CBC3_SHA, RC4_MD5),
                               rng=PseudoRandom(b"nohook-c"))
            client.start_handshake()
        pump(client, server, cp, sp)
        assert server.cipher_suite.suite_id == DES_CBC3_SHA.suite_id

    def test_farm_counts_downgrades(self, identity512):
        """Under a zero-gap burst the farm's suite policy engages and the
        downgraded connections negotiate RC4/MD5."""
        key, cert = identity512
        rsa.reset_error_tables()
        farm = ServerFarm(
            2, topology=SHARED, key=key, cert=cert, use_crt=True,
            suite_policy=SuitePolicy(primary=DES_CBC3_SHA,
                                     downgrade=RC4_MD5, queue_high=2),
            client_suites=(DES_CBC3_SHA, RC4_MD5))
        workload = AdversarialWorkload.fixed(
            2048, seed=b"downgrade", mean_gap_rounds=0.0)
        result = farm.run(workload, 8, concurrency_per_worker=2)
        assert result.connections_downgraded > 0
        assert result.failures == 0


# ---------------------------------------------------------------------------
# Renegotiation storms + latency surface
# ---------------------------------------------------------------------------

class TestRenegotiationStorm:
    def test_storm_serves_extra_handshakes(self, identity512):
        sim = make_sim(identity512)
        workload = AdversarialWorkload.fixed(
            1024, seed=b"storm", reneg_rate=1.0, reneg_storm=2,
            mean_gap_rounds=0.0)
        result = sim.run(workload, 2)
        assert result.renegotiations_served == 4
        # One initial + two renegotiation handshakes per connection, each
        # with its own modeled latency.
        assert len(result.handshake_latencies) == 6
        assert result.requests_completed == 2
        assert result.failures == 0


class TestLatencyPercentiles:
    def test_nearest_rank(self, identity512):
        key, cert = identity512
        rsa.reset_error_tables()
        farm = ServerFarm(2, topology=SHARED, key=key, cert=cert,
                          use_crt=True)
        workload = RequestWorkload.fixed(2048, resumption_rate=0.5)
        result = farm.run(workload, 6, concurrency_per_worker=2)
        lats = sorted(result.handshake_latencies)
        assert len(lats) == 6
        assert result.handshake_latency_percentile(50) == lats[2]
        assert result.handshake_latency_percentile(99) == lats[5]
        assert result.handshake_latency_percentile(100) == lats[5]

    def test_empty_is_zero(self):
        from repro.webserver.farm import FarmResult
        result = FarmResult(nworkers=1, topology=SHARED, policy="x")
        assert result.handshake_latency_percentile(99) == 0.0


# ---------------------------------------------------------------------------
# Workload stream contract
# ---------------------------------------------------------------------------

class TestAdversarialWorkload:
    def test_deterministic_stream(self):
        def stream():
            w = AdversarialWorkload.fixed(
                2048, resumption_rate=0.5, seed=b"det", clients=4,
                mean_gap_rounds=2.0, flash=(3, 4.0), flood_rate=0.3,
                reneg_rate=0.2)
            return list(w.requests(20))
        assert stream() == stream()

    def test_plain_workload_stream_unchanged(self):
        """The overload fields ride on Request defaults: a plain
        RequestWorkload stream is byte-identical to the pre-overload one
        (same draws, defaulted annotations)."""
        w = RequestWorkload.fixed(2048, resumption_rate=0.5,
                                  seed=b"plain", clients=4)
        for request in w.requests(10):
            assert request.arrival_round == 0
            assert request.abandon is None
            assert request.renegotiations == 0

    def test_floods_never_resume(self):
        w = AdversarialWorkload.fixed(
            1024, resumption_rate=1.0, seed=b"floods", clients=2,
            flood_rate=1.0)
        for request in w.requests(10):
            assert request.abandon is not None
            assert not request.resumable
            assert request.renegotiations == 0

    def test_flash_compresses_gaps(self):
        """A flash ramp multiplies the arrival rate: the post-ramp stream
        must arrive denser than the same seed without the ramp."""
        def span(flash):
            w = AdversarialWorkload.fixed(
                1024, seed=b"flash", mean_gap_rounds=4.0, flash=flash)
            return max(r.arrival_round for r in w.requests(30))
        assert span((0, 16.0)) < span(None)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdversarialWorkload.fixed(1024, flood_rate=1.5)
        with pytest.raises(ValueError):
            AdversarialWorkload.fixed(1024, flood_mode="nope")
        with pytest.raises(ValueError):
            AdversarialWorkload.fixed(1024, mean_gap_rounds=-1.0)
        with pytest.raises(ValueError):
            AdversarialWorkload.fixed(1024, flash=(-1, 2.0))
