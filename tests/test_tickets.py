"""Stateless session tickets: ring, handshake integration, simulator.

RFC-5077-shape tickets (repro.ssl.ticket) move resumption state to the
client: the server seals (suite, master secret, timestamps) into an
opaque blob and retains *nothing*.  These tests pin the seal/open
round-trip and every rejection path at the ring level, the mint /
accept / renew / fallback flows through real loopback handshakes, the
memory-boundedness contract at the simulator level (a million-client
population with O(capacity) retained state), and bit-identity of the
process-parallel farm backend with tickets enabled.
"""

from __future__ import annotations

import pytest

from repro import perf
from repro.crypto import rsa
from repro.crypto.rand import PseudoRandom
from repro.perf import baseline
from repro.ssl.client import SslClient
from repro.ssl.loopback import pump
from repro.ssl.server import SslServer
from repro.ssl.session import SessionCache
from repro.ssl.ticket import (
    KEY_NAME_LENGTH, SESSION_TICKET_EXT, TicketKeyRing, TicketState,
)
from repro.webserver import PARTITIONED, RequestWorkload, ServerFarm
from repro.webserver.simulator import WebServerSimulator


def make_ring(**kwargs):
    kwargs.setdefault("seed", b"test-ring")
    return TicketKeyRing(**kwargs)


def mint(ring, *, now=0.0, created_at=None, lifetime=300.0,
         suite_id=0x000A, secret=b"\x5a" * 48, seed=b"mint-rng"):
    return ring.mint(cipher_suite_id=suite_id, master_secret=secret,
                     created_at=now if created_at is None else created_at,
                     lifetime=lifetime, rng=PseudoRandom(seed), now=now)


class TestTicketKeyRing:
    def test_validation(self):
        with pytest.raises(ValueError):
            TicketKeyRing(rotation_interval=0.0)
        with pytest.raises(ValueError):
            TicketKeyRing(rotation_interval=-1.0)
        with pytest.raises(ValueError):
            TicketKeyRing(accept_window=-1)

    def test_epoch_of(self):
        ring = make_ring(rotation_interval=10.0)
        assert ring.epoch_of(0.0) == 0
        assert ring.epoch_of(9.999) == 0
        assert ring.epoch_of(10.0) == 1
        assert ring.epoch_of(35.0) == 3
        assert ring.epoch_of(-5.0) == 0  # clamped, never negative

    def test_key_name_shape(self):
        ring = make_ring()
        name = ring.key_name(7)
        assert len(name) == KEY_NAME_LENGTH
        assert name[8:] == (7).to_bytes(8, "big")
        # Different epochs share the ring label but not the counter.
        assert ring.key_name(8)[:8] == name[:8]
        assert ring.key_name(8) != name

    def test_rings_with_different_seeds_do_not_interoperate(self):
        a, b = make_ring(seed=b"ring-a"), make_ring(seed=b"ring-b")
        ticket = mint(a)
        assert b.open(ticket, 0.0) == (None, False)

    def test_mint_rejects_bad_master_secret(self):
        with pytest.raises(ValueError):
            mint(make_ring(), secret=b"short")

    def test_mint_is_deterministic(self):
        assert mint(make_ring()) == mint(make_ring())


class TestMintOpen:
    def test_roundtrip_recovers_state(self):
        ring = make_ring()
        ticket = mint(ring, now=12.5, lifetime=250.0)
        state, renew = ring.open(ticket, 13.0)
        assert isinstance(state, TicketState)
        assert not renew
        assert state.cipher_suite_id == 0x000A
        assert state.master_secret == b"\x5a" * 48
        assert state.created_at == 12.5
        assert state.lifetime == 250.0

    def test_stale_epoch_in_window_renews(self):
        ring = make_ring(rotation_interval=10.0, accept_window=1)
        ticket = mint(ring, now=5.0)
        state, renew = ring.open(ticket, 15.0)  # epoch 1, minted at 0
        assert state is not None and renew

    def test_rotation_boundary_is_exact(self):
        ring = make_ring(rotation_interval=10.0, accept_window=1)
        ticket = mint(ring, now=9.999)          # last instant of epoch 0
        state, renew = ring.open(ticket, 9.999)
        assert state is not None and not renew
        state, renew = ring.open(ticket, 10.0)  # first instant of epoch 1
        assert state is not None and renew

    def test_out_of_accept_window_rejected(self):
        ring = make_ring(rotation_interval=10.0, accept_window=1)
        ticket = mint(ring, now=0.0, lifetime=1e6)
        assert ring.open(ticket, 20.0) == (None, False)   # epoch 2

    def test_zero_accept_window_only_current_epoch(self):
        ring = make_ring(rotation_interval=10.0, accept_window=0)
        ticket = mint(ring, now=0.0, lifetime=1e6)
        assert ring.open(ticket, 9.0)[0] is not None
        assert ring.open(ticket, 10.0) == (None, False)

    def test_future_dated_ticket_rejected(self):
        ring = make_ring(rotation_interval=10.0)
        ticket = mint(ring, now=25.0)           # epoch 2
        assert ring.open(ticket, 5.0) == (None, False)

    def test_expired_session_rejected(self):
        ring = make_ring()
        ticket = mint(ring, now=0.0, lifetime=100.0)
        assert ring.open(ticket, 50.0)[0] is not None
        assert ring.open(ticket, 101.0) == (None, False)

    @pytest.mark.parametrize("position", [0, KEY_NAME_LENGTH,  # name, iv
                                          KEY_NAME_LENGTH + 16,  # ciphertext
                                          -1])                    # mac
    def test_any_flipped_byte_rejects(self, position):
        ring = make_ring()
        ticket = bytearray(mint(ring))
        ticket[position] ^= 0x01
        assert ring.open(bytes(ticket), 0.0) == (None, False)

    def test_truncated_ticket_rejected(self):
        ring = make_ring()
        ticket = mint(ring)
        for cut in (0, 1, 20, len(ticket) - 21, len(ticket) - 1):
            assert ring.open(ticket[:cut], 0.0) == (None, False)

    def test_unaligned_ciphertext_rejected(self):
        ring = make_ring()
        ticket = mint(ring)
        # Splice one byte out of the ciphertext body (lengths stay above
        # the minimum, alignment breaks).
        mangled = ticket[:40] + ticket[41:]
        assert ring.open(mangled, 0.0) == (None, False)


# ---------------------------------------------------------------------------
# Loopback handshakes
# ---------------------------------------------------------------------------

def handshake(identity, *, ring=None, session=None, session_tickets=True,
              cache=None, now=0.0, seed=b"tkt"):
    """One pumped loopback handshake; returns (client, server)."""
    key, cert = identity
    key.use_crt = True
    server_prof, client_prof = perf.Profiler(), perf.Profiler()
    with perf.activate(server_prof):
        server = SslServer(key, cert, session_cache=cache,
                           ticket_keys=ring, clock=lambda: now,
                           rng=PseudoRandom(seed + b"-s"))
    with perf.activate(client_prof):
        client = SslClient(session=session,
                           session_tickets=session_tickets,
                           rng=PseudoRandom(seed + b"-c"))
        client.start_handshake()
    pump(client, server, client_prof, server_prof)
    assert client.handshake_complete and server.handshake_complete
    return client, server


class TestLoopbackTickets:
    def test_full_handshake_mints_ticket(self, identity512):
        ring = make_ring()
        cache = SessionCache()
        client, server = handshake(identity512, ring=ring, cache=cache)
        assert server.tickets_minted == 1
        assert client.session is not None
        assert client.session.ticket
        # The whole point: nothing retained server-side.
        assert len(cache) == 0

    def test_ticket_resumption_skips_cache(self, identity512):
        ring = make_ring()
        cache = SessionCache()
        c1, _ = handshake(identity512, ring=ring, cache=cache, seed=b"t1")
        c2, s2 = handshake(identity512, ring=ring, cache=cache,
                           session=c1.session, seed=b"t2")
        assert s2.resumed and s2.resumed_via_ticket
        assert s2.tickets_accepted == 1
        assert s2.tickets_minted == 0      # same epoch: no renewal
        assert len(cache) == 0
        assert cache.hits == cache.misses == 0  # never even probed

    def test_stale_epoch_accepts_and_renews(self, identity512):
        ring = make_ring(rotation_interval=100.0, accept_window=1)
        c1, _ = handshake(identity512, ring=ring, now=10.0, seed=b"r1")
        original = bytes(c1.session.ticket)
        c2, s2 = handshake(identity512, ring=ring, session=c1.session,
                           now=150.0, seed=b"r2")
        assert s2.resumed_via_ticket
        assert s2.tickets_renewed == 1 and s2.tickets_minted == 1
        # The client replaced its stored ticket with the re-minted one
        # (SslSession is shared/mutated in place, hence the snapshot).
        assert c2.session is c1.session
        assert bytes(c2.session.ticket) != original
        # The renewed ticket opens under the current key and keeps the
        # original creation time (RFC 5077 rollover, not a fresh life).
        state, renew = ring.open(c2.session.ticket, 150.0)
        assert state is not None and not renew
        assert state.created_at == 10.0

    def test_out_of_window_falls_back_to_full(self, identity512):
        ring = make_ring(rotation_interval=100.0, accept_window=1)
        c1, _ = handshake(identity512, ring=ring, now=0.0, seed=b"w1",
                          session=None)
        c2, s2 = handshake(identity512, ring=ring, session=c1.session,
                           now=250.0, seed=b"w2")     # epoch 2: gone
        assert not s2.resumed
        assert s2.tickets_rejected == 1
        assert s2.tickets_minted == 1      # the full handshake re-mints

    @pytest.mark.parametrize("mangle", [
        lambda t: t[:-1] + bytes([t[-1] ^ 1]),   # MAC flip
        lambda t: t[:24],                        # truncation
        lambda t: b"\x00" * len(t),              # zeroed blob
    ])
    def test_bad_ticket_is_never_fatal(self, identity512, mangle):
        ring = make_ring()
        c1, _ = handshake(identity512, ring=ring, seed=b"b1")
        c1.session.ticket = mangle(bytes(c1.session.ticket))
        c2, s2 = handshake(identity512, ring=ring, session=c1.session,
                           seed=b"b2")
        assert not s2.resumed                    # fell back, completed
        assert s2.tickets_rejected == 1

    def test_id_cache_still_works_beside_tickets(self, identity512):
        # A client that does not do tickets resumes through the id cache
        # even when the server has a ring configured.
        ring = make_ring()
        cache = SessionCache()
        c1, s1 = handshake(identity512, ring=ring, cache=cache,
                           session_tickets=False, seed=b"i1")
        assert s1.tickets_minted == 0 and len(cache) == 1
        c2, s2 = handshake(identity512, ring=ring, cache=cache,
                           session=c1.session, session_tickets=False,
                           seed=b"i2")
        assert s2.resumed and not s2.resumed_via_ticket
        assert cache.hits == 1

    def test_hello_extension_roundtrip(self, identity512):
        ring = make_ring()
        c1, _ = handshake(identity512, ring=ring, seed=b"x1")
        client = SslClient(session=c1.session,
                           rng=PseudoRandom(b"x2-c"))
        client.start_handshake()
        from repro.ssl.handshake import ClientHello, iter_messages
        wire = client.pending_output()
        assert wire[0] == 22                 # plaintext handshake record
        body = wire[5:5 + int.from_bytes(wire[3:5], "big")]
        msg_type, msg_body, _ = iter_messages(bytearray(body))[0]
        hello = ClientHello.parse(msg_body)
        assert hello.extension(SESSION_TICKET_EXT) == c1.session.ticket
        assert len(hello.session_id) == 32  # random acceptance handle


# ---------------------------------------------------------------------------
# Simulator and farm integration
# ---------------------------------------------------------------------------

def run_sim(identity, *, tickets=None, clients=None, capacity=8,
            nrequests=10, resumption_rate=0.7, concurrency=1,
            seed=b"sim-tickets"):
    key, cert = identity
    rsa.reset_error_tables()
    sim = WebServerSimulator(key=key, cert=cert, use_crt=True, seed=seed,
                             tickets=tickets,
                             client_pool_capacity=capacity)
    workload = RequestWorkload.fixed(2048, resumption_rate=resumption_rate,
                                    seed=seed, clients=clients)
    return sim, sim.run(workload, nrequests, concurrency=concurrency)


class TestSimulatorTickets:
    def test_ticket_mode_keeps_server_cache_empty(self, identity512):
        sim, result = run_sim(identity512, tickets=make_ring(), clients=4)
        assert result.failures == 0
        assert result.tickets_minted > 0
        assert result.tickets_accepted > 0
        assert result.resumed_handshakes == result.tickets_accepted
        assert len(sim._session_cache) == 0

    def test_without_ring_counters_stay_zero(self, identity512):
        sim, result = run_sim(identity512, clients=4)
        assert result.tickets_minted == result.tickets_accepted == 0
        assert result.tickets_rejected == result.tickets_renewed == 0
        assert len(sim._session_cache) > 0   # classic id cache engaged

    def test_concurrent_path_folds_ticket_counters(self, identity512):
        _, serial = run_sim(identity512, tickets=make_ring(), clients=4)
        _, conc = run_sim(identity512, tickets=make_ring(), clients=4,
                          concurrency=3)
        assert conc.failures == 0
        assert conc.tickets_minted == serial.tickets_minted
        assert conc.tickets_accepted == serial.tickets_accepted

    def test_million_clients_bounded_state(self, identity512):
        # The memory contract of the ISSUE: a 10^6-distinct-client
        # population must complete with O(pool capacity) retained state
        # on both sides -- no per-client server cache entries, no
        # unbounded client-session list.
        sim, result = run_sim(identity512, tickets=make_ring(),
                              clients=10**6, capacity=8, nrequests=24)
        assert result.requests_completed == 24
        pool = sim._client_sessions
        assert len(pool) <= 8
        assert pool.peak_size <= 8
        assert len(sim._session_cache) == 0


def ticket_farm_signature(result) -> str:
    sig = baseline.capture(
        result.merged_profiler(), scenario="ticket-farm-test",
        extra={
            "requests_completed": result.requests_completed,
            "failures": result.failures,
            "resumed_handshakes": result.resumed_handshakes,
            "wire_bytes": result.wire_bytes,
            "tickets_minted": result.tickets_minted,
            "tickets_accepted": result.tickets_accepted,
            "tickets_rejected": result.tickets_rejected,
            "tickets_renewed": result.tickets_renewed,
            "shard_stats": result.shard_stats,
            "per_worker_cycles": [r.profiler.total_cycles()
                                  for r in result.results],
        })
    return baseline.canonical_json(sig)


class TestParallelTicketIdentity:
    def run_ticket_farm(self, identity, parallel):
        key, cert = identity
        rsa.reset_error_tables()
        ring = TicketKeyRing(seed=b"farm-ring")
        farm = ServerFarm(2, topology=PARTITIONED, key=key, cert=cert,
                          use_crt=True, tickets=ring,
                          client_pool_capacity=8)
        workload = RequestWorkload.fixed(2048, resumption_rate=0.7,
                                        seed=b"farm-tickets", clients=4)
        return farm.run(workload, 10, concurrency_per_worker=2,
                        parallel=parallel)

    def test_parallel_matches_serial(self, identity512):
        serial = self.run_ticket_farm(identity512, 0)
        par = self.run_ticket_farm(identity512, 2)
        assert par.backend == "parallel:2"
        assert serial.tickets_accepted > 0
        assert ticket_farm_signature(par) == ticket_farm_signature(serial)
