"""Regression tests for the record-layer padding oracle, the sequence
number desynchronization, and the key-exchange Bleichenbacher oracle.

Each test pins the *fixed* behaviour and fails against the pre-fix code:
the old record layer raised before MACing when padding was malformed (a
Vaudenay timing oracle) and only advanced ``seq_num`` on success; the old
server raised a distinguishable handshake failure straight from
``_process_client_kx_rsa`` (a Bleichenbacher million-message oracle).
"""

import pytest

from repro import perf
from repro.crypto.mac import ssl3_mac
from repro.crypto.rand import PseudoRandom
from repro.ssl import kdf
from repro.ssl.client import SslClient
from repro.ssl.errors import AlertError, BadRecordMac
from repro.ssl.handshake import ClientKeyExchange
from repro.ssl.record import (
    ConnectionState, ContentType, KeyMaterial, RecordLayer, SSL3_VERSION,
    TLS1_VERSION,
)
from repro.ssl.ciphersuites import DES_CBC3_SHA
from repro.ssl.server import ServerHandshakeState, SslServer

SUITE = DES_CBC3_SHA  # block cipher + SHA-1: the paper's suite
BS = SUITE.block_size
MAC_SIZE = SUITE.mac_size


def make_pair(version=SSL3_VERSION, seed=b"oracle-test"):
    """(tx, rx, material, forge) -- forge is an attacker-style cipher
    sharing the connection key/IV, for crafting raw ciphertexts."""
    need = SUITE.key_material_length() // 2
    block = kdf.derive(bytes(48), seed.ljust(32, b"\0"), bytes(32),
                       SUITE.key_material_length())
    material = KeyMaterial(
        mac_secret=block[:SUITE.mac_key_len],
        key=block[SUITE.mac_key_len:SUITE.mac_key_len + SUITE.key_len],
        iv=block[need - SUITE.iv_len:need],
    )
    tx = ConnectionState(SUITE, material, version=version)
    rx = ConnectionState(SUITE, KeyMaterial(material.mac_secret,
                                            material.key, material.iv),
                         version=version)
    forge = SUITE.new_cipher(material.key, material.iv)
    return tx, rx, material, forge


def bad_pad_body(forge, junk=b"J" * 31, pad_byte=200):
    """A 32-byte record whose final (padding-length) byte is absurd."""
    assert (len(junk) + 1) % BS == 0
    return forge.encrypt(junk + bytes([pad_byte]))


def bad_mac_body(forge):
    """A well-padded 32-byte record carrying a garbage MAC."""
    plain = b"J" * 11 + b"M" * MAC_SIZE + bytes([0])  # pad_len 0: valid
    return forge.encrypt(plain)


class TestPaddingOracleFix:
    def test_bad_padding_still_pays_for_the_mac(self, isolated_profiler):
        """The countermeasure: MAC over a best-effort fragment even when
        the padding is garbage.  Pre-fix code raised before the ``mac``
        region, leaving it uncharged."""
        _, rx, _, forge = make_pair()
        with pytest.raises(BadRecordMac):
            rx.open(ContentType.APPLICATION_DATA, bad_pad_body(forge))
        assert isolated_profiler.region_cycles("mac") > 0
        assert isolated_profiler.region_cycles("pri_decryption") > 0

    def test_bad_padding_and_bad_mac_are_indistinguishable(self):
        """Same exception type, same message, same cycle count: no oracle
        separates a padding failure from a MAC failure."""
        _, rx1, _, forge1 = make_pair()
        pad_prof = perf.Profiler()
        with perf.activate(pad_prof), pytest.raises(BadRecordMac) as pad_exc:
            rx1.open(ContentType.APPLICATION_DATA, bad_pad_body(forge1))
        _, rx2, _, forge2 = make_pair()
        mac_prof = perf.Profiler()
        with perf.activate(mac_prof), pytest.raises(BadRecordMac) as mac_exc:
            rx2.open(ContentType.APPLICATION_DATA, bad_mac_body(forge2))
        assert str(pad_exc.value) == str(mac_exc.value)
        assert pad_prof.total_cycles() == mac_prof.total_cycles()

    def test_pad_length_exceeding_record_is_uniform(self):
        _, rx, _, forge = make_pair()
        body = forge.encrypt(b"x" * 15 + bytes([255]))
        with pytest.raises(BadRecordMac) as exc:
            rx.open(ContentType.APPLICATION_DATA, body)
        assert str(exc.value) == str(BadRecordMac())

    def test_record_shorter_than_mac_is_uniform(self, isolated_profiler):
        """Stripping padding below mac_size must not skip the MAC stage."""
        _, rx, _, forge = make_pair()
        body = forge.encrypt(b"s" * 7 + bytes([7]))  # strips to nothing
        with pytest.raises(BadRecordMac) as exc:
            rx.open(ContentType.APPLICATION_DATA, body)
        assert str(exc.value) == str(BadRecordMac())
        assert isolated_profiler.region_cycles("mac") > 0

    def test_tls_inconsistent_padding_bytes_uniform(self):
        """TLS 1.0 checks every padding byte; inconsistency must fail the
        same way as a MAC mismatch, MAC still computed."""
        _, rx, _, forge = make_pair(version=TLS1_VERSION)
        # Final byte claims pad_len 5, but the padding bytes are junk.
        body = forge.encrypt(b"j" * 26 + b"\x01\x02\x03\x04\x05\x05")
        prof = perf.Profiler()
        with perf.activate(prof), pytest.raises(BadRecordMac) as exc:
            rx.open(ContentType.APPLICATION_DATA, body)
        assert str(exc.value) == str(BadRecordMac())
        assert prof.region_cycles("mac") > 0


class TestSequenceNumberFix:
    def test_seq_num_advances_exactly_once_on_failure(self):
        _, rx, _, forge = make_pair()
        assert rx.seq_num == 0
        with pytest.raises(BadRecordMac):
            rx.open(ContentType.APPLICATION_DATA, bad_pad_body(forge))
        assert rx.seq_num == 1

    def test_good_record_opens_after_rejected_record(self):
        """A rejected record consumes one sequence number, so the next
        honest record (MACed under seq 1) must verify.  Pre-fix, the
        receiver stayed at seq 0 and rejected everything after."""
        _, rx, material, forge = make_pair()
        first = bad_pad_body(forge)
        fragment = b"after-failure"
        mac = ssl3_mac(SUITE.hash_factory(), material.mac_secret, 1,
                       ContentType.APPLICATION_DATA, fragment)
        plain = fragment + mac
        pad_len = BS - (len(plain) + 1) % BS
        plain += bytes(pad_len) + bytes([pad_len])
        second = forge.encrypt(plain)
        with pytest.raises(BadRecordMac):
            rx.open(ContentType.APPLICATION_DATA, first)
        assert rx.open(ContentType.APPLICATION_DATA, second) == fragment
        assert rx.seq_num == 2

    def test_seq_num_advances_on_success(self):
        tx, rx, _, _ = make_pair()
        for i in range(3):
            body = tx.seal(ContentType.APPLICATION_DATA, b"n%d" % i)
            assert rx.open(ContentType.APPLICATION_DATA, body) == b"n%d" % i
        assert rx.seq_num == 3


def split_records(wire):
    out = []
    i = 0
    while i < len(wire):
        length = int.from_bytes(wire[i + 3:i + 5], "big")
        out.append(wire[i:i + 5 + length])
        i += 5 + length
    return out


def server_awaiting_kx(identity512, seed=b"bb"):
    """A server driven to WAIT_CLIENT_KX, plus the client's real flight."""
    key, cert = identity512
    server = SslServer(key, cert, suites=(SUITE,),
                       rng=PseudoRandom(seed + b"-s"))
    client = SslClient(suites=(SUITE,), rng=PseudoRandom(seed + b"-c"))
    client.start_handshake()
    server.receive(client.pending_output())
    client.receive(server.pending_output())
    flight = split_records(client.pending_output())
    assert server._state is ServerHandshakeState.WAIT_CLIENT_KX
    return server, flight


def kx_record(ciphertext):
    msg = ClientKeyExchange(encrypted_pre_master=ciphertext)
    return RecordLayer().emit(ContentType.HANDSHAKE, msg.to_bytes())


class TestBleichenbacherFix:
    def craft_cases(self, key):
        pub = key.public()
        rng = PseudoRandom(b"craft")
        return {
            # Valid length, junk value: PKCS#1 unpadding fails.
            "undecryptable": bytes([1]) + rng.bytes(key.size - 1),
            # Decrypts fine but the pre-master is 47 bytes, not 48.
            "short_pre_master": pub.encrypt(
                b"\x03\x00" + rng.bytes(45), rng),
            # 48 bytes but the rollback-defence version bytes are wrong.
            "version_rollback": pub.encrypt(
                b"\x03\x63" + rng.bytes(46), rng),
            # Not even one modulus worth of ciphertext.
            "wrong_length": rng.bytes(10),
        }

    @pytest.mark.parametrize("case", ["undecryptable", "short_pre_master",
                                      "version_rollback", "wrong_length"])
    def test_bad_kx_never_fails_at_kx_time(self, identity512, case):
        """Every malformed key exchange is silently absorbed: a random
        pre-master is substituted and the handshake marches on to the
        Finished check.  Pre-fix code raised handshake_failure right here,
        which is exactly the single-bit oracle Bleichenbacher needs."""
        key, _ = identity512
        server, _ = server_awaiting_kx(identity512, seed=case.encode())
        server.receive(kx_record(self.craft_cases(key)[case]))
        assert server._state is ServerHandshakeState.WAIT_FINISHED
        assert server.master_secret is not None
        assert not server.handshake_complete

    def test_honest_kx_still_accepted(self, identity512):
        server, flight = server_awaiting_kx(identity512, seed=b"honest")
        server.receive(flight[0])
        assert server._state is ServerHandshakeState.WAIT_FINISHED
        for record in flight[1:]:
            server.receive(record)
        assert server.handshake_complete

    def test_tampered_kx_fails_only_at_finished(self, identity512):
        """End to end: flip ciphertext bits inside a real client flight.
        The kx record itself is accepted; the failure surfaces later, at
        the Finished record, as a generic record-MAC alert that names
        nothing about pre-master processing."""
        server, flight = server_awaiting_kx(identity512, seed=b"tamper")
        kx = bytearray(flight[0])
        kx[12] ^= 0xFF
        server.receive(bytes(kx))  # absorbed, no alert
        assert server._state is ServerHandshakeState.WAIT_FINISHED
        with pytest.raises(AlertError) as exc:
            server.receive(b"".join(flight[1:]))  # CCS + Finished
        message = str(exc.value).lower()
        assert "pre-master" not in message and "pkcs" not in message
        assert isinstance(exc.value, BadRecordMac)

    def test_success_draws_the_same_randomness_as_failure(self, identity512):
        """The substitute pre-master is generated unconditionally (RFC
        5246 7.4.7.1), so an accepted ClientKeyExchange spends exactly as
        many rand_pseudo_bytes cycles as a rejected one.  Pre-fix, only
        the failure path drew the 48 random bytes -- a residual timing
        signal in the very code the countermeasure makes uniform."""
        key, _ = identity512
        server, flight = server_awaiting_kx(identity512, seed=b"uni-ok")
        ok_prof = perf.Profiler()
        with perf.activate(ok_prof):
            server.receive(flight[0])
        assert server._state is ServerHandshakeState.WAIT_FINISHED
        bad = self.craft_cases(key)["undecryptable"]
        server2, _ = server_awaiting_kx(identity512, seed=b"uni-bad")
        bad_prof = perf.Profiler()
        with perf.activate(bad_prof):
            server2.receive(kx_record(bad))
        path = "get_client_kx/rand_pseudo_bytes"
        ok_rand = ok_prof.region_cycles(path)
        assert ok_rand > 0
        assert ok_rand == bad_prof.region_cycles(path)

    def test_failure_paths_cost_alike(self, identity512):
        """The random-substitution path must not be measurably cheaper
        than a successful decrypt: both pay the full private operation."""
        key, _ = identity512
        cases = self.craft_cases(key)
        profs = {}
        for case in ("undecryptable", "version_rollback"):
            server, _ = server_awaiting_kx(identity512,
                                           seed=b"cost-" + case.encode())
            prof = perf.Profiler()
            with perf.activate(prof):
                server.receive(kx_record(cases[case]))
            profs[case] = prof.region_cycles("get_client_kx")
        assert profs["undecryptable"] > 0
        # Both include the full RSA private op; within a few percent.
        ratio = profs["undecryptable"] / profs["version_rollback"]
        assert 0.9 < ratio < 1.1
