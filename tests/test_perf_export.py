"""Profile exporters (text tree, CSV, Markdown, comparison)."""

import pytest

from repro.perf import Profiler, mix
from repro.perf.export import (
    compare_profiles, functions_csv, instruction_mix_csv, modules_markdown,
    region_tree_text,
)


@pytest.fixture()
def sample_profile():
    p = Profiler()
    with p.region("handshake"):
        with p.region("rsa"):
            p.charge(mix(movl=1000, mull=200), function="bn_mul_add_words")
        with p.region("hash"):
            p.charge(mix(xorl=100), function="SHA1_Update")
    with p.region("bulk"):
        p.charge(mix(movl=50), function="DES_encrypt3",
                 module="libcrypto")
        p.charge_cycles(500, function="tcp", module="vmlinux")
    return p


class TestRegionTree:
    def test_contains_major_regions(self, sample_profile):
        text = region_tree_text(sample_profile)
        assert "handshake" in text
        assert "rsa" in text
        assert "bulk" in text

    def test_indentation_reflects_nesting(self, sample_profile):
        lines = region_tree_text(sample_profile).splitlines()
        handshake = next(l for l in lines if l.startswith("handshake"))
        rsa = next(l for l in lines if "rsa" in l)
        assert rsa.startswith("  ")
        assert not handshake.startswith(" ")

    def test_min_share_folds_tiny_nodes(self, sample_profile):
        text = region_tree_text(sample_profile, min_share=0.9)
        assert "hash" not in text

    def test_empty_profile(self):
        assert region_tree_text(Profiler()) == ""


class TestCsv:
    def test_functions_csv_shape(self, sample_profile):
        lines = functions_csv(sample_profile).strip().splitlines()
        assert lines[0] == \
            "function,module,calls,cycles,instructions,share"
        assert any("bn_mul_add_words" in l for l in lines)
        # share column sums to ~1
        shares = [float(l.rsplit(",", 1)[1]) for l in lines[1:]]
        assert sum(shares) == pytest.approx(1.0, abs=0.01)

    def test_functions_csv_top_limits(self, sample_profile):
        lines = functions_csv(sample_profile, top=2).strip().splitlines()
        assert len(lines) == 3

    def test_instruction_mix_csv(self, sample_profile):
        lines = instruction_mix_csv(sample_profile).strip().splitlines()
        assert lines[0] == "mnemonic,count,share"
        assert any(l.startswith("movl,") for l in lines)

    def test_commas_in_names_escaped(self):
        p = Profiler()
        p.charge(mix(movl=1), function="weird,name")
        assert "weird;name" in functions_csv(p)


class TestMarkdown:
    def test_modules_markdown(self, sample_profile):
        md = modules_markdown(sample_profile)
        assert md.startswith("| module | cycles | share |")
        assert "| libcrypto |" in md
        assert "| vmlinux |" in md


class TestCompare:
    def test_deltas(self):
        a, b = Profiler(), Profiler()
        a.charge(mix(movl=100), function="shared")
        b.charge(mix(movl=200), function="shared")
        a.charge(mix(movl=10), function="only_a")
        b.charge(mix(movl=10), function="only_b")
        text = compare_profiles(a, b, "before", "after")
        assert "shared" in text
        assert "+100.0%" in text
        assert "gone" in text and "new" in text

    def test_real_ablation_comparison(self):
        """Compare CRT vs non-CRT RSA profiles end to end."""
        from repro.crypto.bench import measure_rsa
        crt = measure_rsa(512, use_crt=True)
        noncrt = measure_rsa(512, use_crt=False)
        text = compare_profiles(crt.profiler, noncrt.profiler,
                                "crt", "non-crt")
        assert "bn_mul_add_words" in text
