"""The golden-cycle regression gate (repro.perf.baseline + perfgate).

Three properties keep the gate trustworthy:

* **round-trip**: recording the same scenario twice produces
  byte-identical baseline files, so ``--record`` -> ``--check`` is a
  fixed point and git diffs over ``baselines/`` are meaningful;
* **sensitivity**: a 1% perturbation of a single kernel's cycle charge
  is caught and attributed to the drifted leaves;
* **freshness**: the committed ``baselines/*.json`` match what the tree
  actually produces, so the CI job is checking something real.
"""

import math
from pathlib import Path

import pytest

from repro.perf import baseline
from repro.perf.profiler import Profiler
from repro.tools import perfgate

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_DIR = REPO_ROOT / "baselines"

#: Scenarios cheap enough to re-capture inside the unit-test budget.
CHEAP = ["kernel_md5", "kernel_sha1", "kernel_bignum"]


# ---------------------------------------------------------------------------
# Canonical JSON
# ---------------------------------------------------------------------------

def test_canonical_json_is_order_insensitive():
    a = {"b": 2.0, "a": {"y": 1, "x": [1.5, 2.0]}}
    b = {"a": {"x": [1.5, 2], "y": 1.0}, "b": 2}
    assert baseline.canonical_json(a) == baseline.canonical_json(b)


def test_canonical_json_formatting():
    text = baseline.canonical_json({"n": 12.0, "f": 0.1, "s": "x"})
    assert text.endswith("\n")
    assert '"n": 12' in text          # integral floats collapse to ints
    assert '"f": 0.1' in text         # non-integral floats keep full repr


def test_canonical_json_rejects_nan():
    with pytest.raises(ValueError):
        baseline.canonical_json({"x": float("nan")})


def test_canonical_json_rejects_unknown_types():
    with pytest.raises(TypeError):
        baseline.canonical_json({"x": object()})


# ---------------------------------------------------------------------------
# Signature diffing
# ---------------------------------------------------------------------------

def _tiny_signature(scale: float = 1.0):
    from repro import perf
    from repro.perf import mix
    profiler = Profiler()
    with perf.activate(profiler):
        with perf.region("step"):
            perf.charge(mix(movl=4, mull=1), times=100 * scale,
                        function="bn_mul_add_words")
        perf.charge_cycles(500, function="tcp_stack", module="vmlinux")
    return baseline.capture(profiler, scenario="tiny",
                            extra={"wire_bytes": 42})


def test_diff_identical_signatures_is_empty():
    assert baseline.diff_signatures(_tiny_signature(), _tiny_signature()) \
        == []


def test_diff_catches_cycle_drift_and_tolerance_forgives_it():
    base, fresh = _tiny_signature(), _tiny_signature(1.01)
    drifts = baseline.diff_signatures(base, fresh)
    paths = {d.path for d in drifts}
    assert "cycles_total" in paths
    assert "functions.bn_mul_add_words.cycles" in paths
    assert "regions.step.cycles" in paths
    # ~1% drift clears a 5% gate but not a 0.1% one.
    assert baseline.diff_signatures(base, fresh, tolerance=0.05) == []
    assert baseline.diff_signatures(base, fresh, tolerance=0.001)


def test_diff_catches_shape_changes():
    base, fresh = _tiny_signature(), _tiny_signature()
    del fresh["functions"]["tcp_stack"]
    fresh["extra"]["new_metric"] = 7
    drifts = baseline.diff_signatures(base, fresh, tolerance=math.inf)
    paths = {d.path for d in drifts}
    assert "functions.tcp_stack" in paths     # vanished function
    assert "extra.new_metric" in paths        # appeared metric


def test_diff_schema_mismatch_short_circuits():
    base, fresh = _tiny_signature(), _tiny_signature(2.0)
    fresh["schema"] = base["schema"] + 1
    drifts = baseline.diff_signatures(base, fresh)
    assert len(drifts) == 1 and drifts[0].path == "schema"


# ---------------------------------------------------------------------------
# Record / check round-trip
# ---------------------------------------------------------------------------

def test_record_check_roundtrip_is_byte_identical(tmp_path):
    dir_a, dir_b = tmp_path / "a", tmp_path / "b"
    perfgate.record(["kernel_md5"], dir_a)
    perfgate.record(["kernel_md5"], dir_b)
    text_a = (dir_a / "kernel_md5.json").read_text()
    assert text_a == (dir_b / "kernel_md5.json").read_text()
    assert text_a.endswith("\n")
    ok, report = perfgate.check(["kernel_md5"], dir_a)
    assert ok, report


def test_capture_is_independent_of_scenario_order():
    after_others = None
    for order in (["kernel_bignum", "kernel_md5"], ["kernel_md5"]):
        sigs = {name: perfgate.capture_scenario(name) for name in order}
        if after_others is None:
            after_others = sigs["kernel_md5"]
        else:
            assert sigs["kernel_md5"] == after_others


def test_missing_baseline_fails_check(tmp_path):
    ok, report = perfgate.check(["kernel_md5"], tmp_path / "empty")
    assert not ok
    assert "no baseline" in report


def test_perturbed_kernel_cycle_charge_is_caught(tmp_path, monkeypatch):
    """A +1% charge in one kernel (SHA1's block function) must fail the
    gate and name the drifted function."""
    perfgate.record(["kernel_sha1"], tmp_path)

    unpatched = Profiler.charge

    def inflated(self, m, times=1.0, *, function="<anon>",
                 module="libcrypto", stall=1.0):
        if function == "SHA1_Update":
            times *= 1.01
        return unpatched(self, m, times, function=function, module=module,
                         stall=stall)

    monkeypatch.setattr(Profiler, "charge", inflated)
    ok, report = perfgate.check(["kernel_sha1"], tmp_path)
    assert not ok
    assert "SHA1_Update" in report
    assert "cycles_total" in report
    # The default exact gate flags it *and* even a generous 0.1% relative
    # tolerance still does: the injected drift is a real 1%.
    ok_tol, _ = perfgate.check(["kernel_sha1"], tmp_path, tolerance=1e-3)
    assert not ok_tol


# ---------------------------------------------------------------------------
# Committed baselines
# ---------------------------------------------------------------------------

def test_registry_covers_the_required_scenarios():
    assert len(perfgate.SCENARIOS) >= 12
    assert "farm_2workers" in perfgate.SCENARIOS
    assert "batch_rsa_flush" in perfgate.SCENARIOS
    assert "resumed_session" in perfgate.SCENARIOS


def test_every_scenario_has_a_committed_baseline():
    missing = [name for name in perfgate.SCENARIOS
               if not (BASELINE_DIR / f"{name}.json").exists()]
    assert not missing, f"record + commit baselines for: {missing}"


def test_committed_baselines_are_canonical():
    """Hand-edited or non-canonically-written baseline files would make
    --record diffs noisy; every committed file must be a fixed point of
    the canonical writer."""
    for path in sorted(BASELINE_DIR.glob("*.json")):
        sig = baseline.load_json(path)
        assert baseline.canonical_json(sig) == path.read_text(), path
        assert sig["scenario"] == path.stem


def test_committed_cheap_baselines_match_fresh_captures():
    ok, report = perfgate.check(CHEAP, BASELINE_DIR)
    assert ok, f"committed baselines are stale:\n{report}"


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_list_and_check(tmp_path, capsys):
    assert perfgate.main(["--list"]) == 0
    assert "farm_2workers" in capsys.readouterr().out

    report = tmp_path / "report.txt"
    code = perfgate.main(["--check", "kernel_md5",
                          "--baseline-dir", str(BASELINE_DIR),
                          "--report", str(report)])
    assert code == 0
    assert "PASS" in report.read_text()

    code = perfgate.main(["--check", "kernel_md5",
                          "--baseline-dir", str(tmp_path / "none"),
                          "--report", str(report)])
    assert code == 1
    assert "FAIL" in report.read_text()


def test_cli_diff(tmp_path):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    baseline.write_json(a, _tiny_signature())
    baseline.write_json(b, _tiny_signature(1.01))
    assert perfgate.main(["--diff", str(a), str(a)]) == 0
    assert perfgate.main(["--diff", str(a), str(b)]) == 1


def test_cli_rejects_unknown_scenario():
    with pytest.raises(SystemExit):
        perfgate.main(["--check", "no_such_scenario"])
