"""Unit tests for the hierarchical profiler."""

import pytest

from repro import perf
from repro.perf import Profiler, mix


class TestCharging:
    def test_charge_returns_cycles(self):
        p = Profiler()
        cycles = p.charge(mix(movl=100), function="f")
        assert cycles > 0
        assert p.total_cycles() == pytest.approx(cycles)

    def test_charge_times_scales(self):
        p, q = Profiler(), Profiler()
        p.charge(mix(movl=10), times=5, function="f")
        q.charge(mix(movl=50), function="f")
        assert p.total_cycles() == pytest.approx(q.total_cycles())

    def test_function_attribution(self):
        p = Profiler()
        p.charge(mix(movl=10), function="alpha")
        p.charge(mix(movl=30), function="beta")
        rows = p.function_breakdown()
        assert rows[0][0] == "beta"
        assert rows[0][2] == pytest.approx(0.75)

    def test_function_breakdown_top_n(self):
        p = Profiler()
        for i in range(10):
            p.charge(mix(movl=i + 1), function=f"f{i}")
        assert len(p.function_breakdown(top=3)) == 3

    def test_module_attribution(self):
        p = Profiler()
        p.charge(mix(movl=10), module="libcrypto", function="a")
        p.charge(mix(movl=10), module="libssl", function="b")
        shares = dict((name, share)
                      for name, _, share in p.module_breakdown())
        assert shares["libcrypto"] == pytest.approx(0.5)
        assert shares["libssl"] == pytest.approx(0.5)

    def test_charge_cycles_modelled(self):
        p = Profiler()
        p.charge_cycles(12345.0, function="tcp", module="vmlinux")
        assert p.total_cycles() == pytest.approx(12345.0)
        assert p.total_instructions() == 0

    def test_charge_cycles_rejects_negative(self):
        with pytest.raises(ValueError):
            Profiler().charge_cycles(-1)

    def test_call_counts(self):
        p = Profiler()
        for _ in range(7):
            p.charge(mix(movl=1), function="f")
        assert p.functions["f"].calls == 7

    def test_overall_cpi(self):
        p = Profiler()
        p.charge(mix(movl=100), function="f")
        assert p.overall_cpi() == pytest.approx(
            p.total_cycles() / 100)

    def test_virtual_clock_monotonic(self):
        p = Profiler()
        t0 = p.now()
        p.charge(mix(movl=5), function="f")
        t1 = p.now()
        p.charge(mix(movl=5), function="f")
        t2 = p.now()
        assert t0 < t1 < t2
        assert t2 - t1 == pytest.approx(t1 - t0)


class TestRegions:
    def test_nested_region_paths(self):
        p = Profiler()
        with p.region("outer"):
            with p.region("inner"):
                p.charge(mix(movl=10), function="f")
        node = p.find_region("outer/inner")
        assert node is not None
        assert node.path() == "outer/inner"
        assert node.inclusive_cycles() > 0

    def test_exclusive_vs_inclusive(self):
        p = Profiler()
        with p.region("outer"):
            p.charge(mix(movl=10), function="f")
            with p.region("inner"):
                p.charge(mix(movl=30), function="f")
        outer = p.find_region("outer")
        inner = p.find_region("outer/inner")
        assert outer.exclusive_cycles == pytest.approx(
            outer.inclusive_cycles() - inner.inclusive_cycles())

    def test_region_reentry_accumulates(self):
        p = Profiler()
        for _ in range(3):
            with p.region("step"):
                p.charge(mix(movl=10), function="f")
        node = p.find_region("step")
        assert node.entries == 3
        assert node.inclusive_cycles() == pytest.approx(p.total_cycles())

    def test_region_cycles_missing_path_is_zero(self):
        assert Profiler().region_cycles("nope/nothing") == 0.0

    def test_region_func_cycles(self):
        p = Profiler()
        with p.region("step"):
            p.charge(mix(movl=10), function="rsa")
            p.charge(mix(movl=5), function="hash")
        fc = p.find_region("step").func_cycles
        assert set(fc) == {"rsa", "hash"}
        assert fc["rsa"] > fc["hash"]

    def test_inclusive_func_cycles_aggregates_subtree(self):
        p = Profiler()
        with p.region("outer"):
            p.charge(mix(movl=1), function="a")
            with p.region("inner"):
                p.charge(mix(movl=1), function="a")
        agg = p.find_region("outer").inclusive_func_cycles()
        assert agg["a"] == pytest.approx(p.total_cycles())

    def test_walk_visits_all_nodes(self):
        p = Profiler()
        with p.region("a"):
            with p.region("b"):
                pass
        with p.region("c"):
            pass
        names = {n.name for n in p.root.walk()}
        assert {"a", "b", "c"} <= names

    def test_exception_inside_region_unwinds_stack(self):
        p = Profiler()
        with pytest.raises(RuntimeError):
            with p.region("outer"):
                raise RuntimeError("boom")
        # Stack is back at root; new charges land at top level.
        p.charge(mix(movl=1), function="f")
        assert p.root.exclusive_cycles > 0


class TestActiveProfilerStack:
    def test_activate_routes_module_level_charge(self):
        p = Profiler()
        with perf.activate(p):
            perf.charge(mix(movl=10), function="f")
        assert p.total_cycles() > 0

    def test_nested_activation(self):
        outer, inner = Profiler(), Profiler()
        with perf.activate(outer):
            perf.charge(mix(movl=1), function="f")
            with perf.activate(inner):
                perf.charge(mix(movl=99), function="f")
            perf.charge(mix(movl=1), function="f")
        assert inner.functions["f"].calls == 1
        assert outer.functions["f"].calls == 2

    def test_module_level_region(self):
        p = Profiler()
        with perf.activate(p):
            with perf.region("step"):
                perf.charge(mix(movl=10), function="f")
        assert p.region_cycles("step") > 0

    def test_current_returns_active(self):
        p = Profiler()
        with perf.activate(p):
            assert perf.current() is p
        assert perf.current() is not p


class TestAccountingInvariants:
    """Structural invariants that must hold for any charge sequence."""

    from hypothesis import given, settings, strategies as st

    charge_ops = st.lists(
        st.tuples(st.sampled_from(["a", "b", "c", "deep/nested"]),
                  st.sampled_from(["f1", "f2", "f3"]),
                  st.sampled_from(["libcrypto", "libssl", "other"]),
                  st.integers(1, 500)),
        min_size=1, max_size=40)

    @given(charge_ops)
    @settings(max_examples=30, deadline=None)
    def test_module_cycles_sum_to_total(self, ops):
        p = Profiler()
        self._apply(p, ops)
        module_total = sum(c for _, c, _ in p.module_breakdown())
        assert module_total == pytest.approx(p.total_cycles())

    @given(charge_ops)
    @settings(max_examples=30, deadline=None)
    def test_function_cycles_sum_to_total(self, ops):
        p = Profiler()
        self._apply(p, ops)
        func_total = sum(f.cycles for f in p.functions.values())
        assert func_total == pytest.approx(p.total_cycles())

    @given(charge_ops)
    @settings(max_examples=30, deadline=None)
    def test_root_inclusive_equals_total(self, ops):
        p = Profiler()
        self._apply(p, ops)
        assert p.root.inclusive_cycles() == pytest.approx(p.total_cycles())

    @given(charge_ops)
    @settings(max_examples=30, deadline=None)
    def test_inclusive_is_exclusive_plus_children(self, ops):
        p = Profiler()
        self._apply(p, ops)
        for node in p.root.walk():
            expect = node.exclusive_cycles + sum(
                c.inclusive_cycles() for c in node.children.values())
            assert node.inclusive_cycles() == pytest.approx(expect)

    @given(charge_ops)
    @settings(max_examples=30, deadline=None)
    def test_shares_sum_to_one(self, ops):
        p = Profiler()
        self._apply(p, ops)
        assert sum(s for _, _, s in p.module_breakdown()) == \
            pytest.approx(1.0)

    @staticmethod
    def _apply(p, ops):
        for path, function, module, count in ops:
            parts = path.split("/")
            if len(parts) == 1:
                with p.region(parts[0]):
                    p.charge(mix(movl=count), function=function,
                             module=module)
            else:
                with p.region(parts[0]):
                    with p.region(parts[1]):
                        p.charge(mix(movl=count), function=function,
                                 module=module)
