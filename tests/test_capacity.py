"""Capacity model and the closed-loop load simulation."""

import pytest

from repro.perf import PENTIUM4, WIDE_CORE
from repro.webserver import LoadSimulator, requests_per_second


class TestAnalyticCapacity:
    def test_basic(self):
        # 28.6M cycles/request on 2.26 GHz: ~79 req/s, the paper's era.
        rps = requests_per_second(28.6e6)
        assert 70 < rps < 90

    def test_scales_with_cpu(self):
        assert requests_per_second(10e6, WIDE_CORE) > \
            requests_per_second(10e6, PENTIUM4)

    def test_validation(self):
        with pytest.raises(ValueError):
            requests_per_second(0)


class TestLoadSimulator:
    CYCLES = 25e6  # ~110 req/s ceiling on the P4 model

    def test_single_client_underutilizes(self):
        sim = LoadSimulator(self.CYCLES, think_seconds=0.1)
        result = sim.run(1, duration_seconds=10)
        assert result.utilization < 0.2
        assert result.throughput_rps < 10

    def test_saturation_with_many_clients(self):
        sim = LoadSimulator(self.CYCLES, think_seconds=0.01)
        result = sim.run(50, duration_seconds=5)
        assert result.utilization > 0.9   # the paper's ">90% load"
        ceiling = requests_per_second(self.CYCLES)
        assert result.throughput_rps == pytest.approx(ceiling, rel=0.1)

    def test_throughput_monotone_then_flat(self):
        sim = LoadSimulator(self.CYCLES, think_seconds=0.05)
        results = sim.saturation_sweep((1, 4, 16, 64), duration_seconds=5)
        rps = [r.throughput_rps for r in results]
        assert rps[0] < rps[1] < rps[2]
        # Beyond saturation, throughput stops growing...
        assert rps[3] == pytest.approx(rps[2], rel=0.15)

    def test_latency_grows_past_saturation(self):
        sim = LoadSimulator(self.CYCLES, think_seconds=0.01)
        light = sim.run(1, duration_seconds=5)
        heavy = sim.run(64, duration_seconds=5)
        assert heavy.latency_percentile(0.5) > \
            5 * light.latency_percentile(0.5)

    def test_latency_floor_is_service_time(self):
        sim = LoadSimulator(self.CYCLES)
        result = sim.run(1, duration_seconds=2)
        assert min(result.latencies) == pytest.approx(
            self.CYCLES / PENTIUM4.frequency_hz, rel=1e-6)

    def test_deterministic(self):
        sim = LoadSimulator(self.CYCLES, think_seconds=0.02)
        a = sim.run(8, duration_seconds=3)
        b = sim.run(8, duration_seconds=3)
        assert a.completed == b.completed
        assert a.throughput_rps == b.throughput_rps

    def test_percentile_bounds(self):
        sim = LoadSimulator(self.CYCLES)
        result = sim.run(2, duration_seconds=1)
        with pytest.raises(ValueError):
            result.latency_percentile(1.5)
        assert result.latency_percentile(0.0) <= \
            result.latency_percentile(1.0)

    @pytest.mark.parametrize("bad", [
        dict(nclients=0), dict(duration_seconds=0),
    ])
    def test_run_validation(self, bad):
        sim = LoadSimulator(self.CYCLES)
        kwargs = dict(nclients=1, duration_seconds=1.0)
        kwargs.update(bad)
        with pytest.raises(ValueError):
            sim.run(**kwargs)

    def test_init_validation(self):
        with pytest.raises(ValueError):
            LoadSimulator(0)
        with pytest.raises(ValueError):
            LoadSimulator(1e6, think_seconds=-1)


class TestSmp:
    CYCLES = 25e6

    def test_two_cpus_double_throughput(self):
        one = LoadSimulator(self.CYCLES, think_seconds=0.001)
        two = LoadSimulator(self.CYCLES, think_seconds=0.001, nservers=2)
        r1 = one.run(32, duration_seconds=5)
        r2 = two.run(32, duration_seconds=5)
        assert r2.throughput_rps == pytest.approx(2 * r1.throughput_rps,
                                                  rel=0.05)

    def test_utilization_normalized_per_cpu(self):
        two = LoadSimulator(self.CYCLES, think_seconds=0.001, nservers=2)
        r = two.run(32, duration_seconds=5)
        assert 0.9 < r.utilization <= 1.0

    def test_underloaded_smp_idle(self):
        four = LoadSimulator(self.CYCLES, think_seconds=0.5, nservers=4)
        r = four.run(1, duration_seconds=5)
        assert r.utilization < 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadSimulator(1e6, nservers=0)


class TestMixedLoad:
    def test_mean_throughput_matches_mix(self):
        from repro.webserver import MixedLoadSimulator
        # 75% resumed (2M cycles), 25% full (20M): mean 6.5M.
        sim = MixedLoadSimulator([20e6, 2e6, 2e6, 2e6],
                                 think_seconds=0.001)
        r = sim.run(32, duration_seconds=5)
        expected = 2.26e9 / 6.5e6
        assert r.throughput_rps == pytest.approx(expected, rel=0.1)

    def test_latency_spread_reflects_heterogeneity(self):
        from repro.webserver import MixedLoadSimulator
        mixed = MixedLoadSimulator([20e6, 2e6, 2e6, 2e6])
        uniform = LoadSimulator(6.5e6)
        rm = mixed.run(1, duration_seconds=3)
        ru = uniform.run(1, duration_seconds=3)
        spread_m = rm.latency_percentile(0.99) / rm.latency_percentile(0.25)
        spread_u = ru.latency_percentile(0.99) / ru.latency_percentile(0.25)
        assert spread_m > 3 * spread_u

    def test_validation(self):
        from repro.webserver import MixedLoadSimulator
        with pytest.raises(ValueError):
            MixedLoadSimulator([])
        with pytest.raises(ValueError):
            MixedLoadSimulator([1e6, 0])
