"""Unit + property tests for the word-level bignum kernels."""

import pytest
from hypothesis import given, strategies as st

from repro.bignum import kernels as K
from repro.bignum.kernels import WORD_BASE, WORD_MASK

words = st.lists(st.integers(0, WORD_MASK), min_size=1, max_size=12)
word = st.integers(0, WORD_MASK)


def to_int(ws):
    return K.int_from_words(ws)


class TestMulAddWords:
    def test_simple(self):
        r = [5, 0, 0]
        c = K.mul_add_words(r, 0, [3, 0, 0], 0, 3, 7)
        assert c == 0
        assert to_int(r) == 5 + 3 * 7

    def test_carry_out(self):
        r = [WORD_MASK]
        c = K.mul_add_words(r, 0, [WORD_MASK], 0, 1, WORD_MASK)
        total = WORD_MASK + WORD_MASK * WORD_MASK
        assert to_int([r[0]]) + c * WORD_BASE == total

    def test_offsets(self):
        r = [0, 0, 0, 0]
        K.mul_add_words(r, 1, [0, 9], 1, 1, 4)
        assert r == [0, 36, 0, 0]

    @given(words, word)
    def test_matches_int_arithmetic(self, a, w):
        n = len(a)
        r = [0] * n
        acc_before = 0
        c = K.mul_add_words(r, 0, a, 0, n, w)
        value = to_int(r) + (c << (32 * n))
        assert value == acc_before + to_int(a) * w

    @given(words, words, word)
    def test_accumulates_existing(self, a, r0, w):
        n = min(len(a), len(r0))
        r = list(r0[:n])
        before = to_int(r)
        c = K.mul_add_words(r, 0, a, 0, n, w)
        assert to_int(r) + (c << (32 * n)) == before + to_int(a[:n]) * w


class TestMulWords:
    @given(words, word)
    def test_matches_int_arithmetic(self, a, w):
        n = len(a)
        r = [99] * n  # must be overwritten
        c = K.mul_words(r, 0, a, 0, n, w)
        assert to_int(r) + (c << (32 * n)) == to_int(a) * w


class TestAddSubWords:
    @given(words, words)
    def test_add_matches_int(self, a, b):
        n = min(len(a), len(b))
        r = [0] * n
        c = K.add_words(r, a, b, n)
        assert to_int(r) + (c << (32 * n)) == to_int(a[:n]) + to_int(b[:n])

    @given(words, words)
    def test_sub_matches_int(self, a, b):
        n = min(len(a), len(b))
        r = [0] * n
        borrow = K.sub_words(r, a, b, n)
        expected = to_int(a[:n]) - to_int(b[:n])
        if borrow:
            expected += 1 << (32 * n)
        assert to_int(r) == expected

    def test_sub_borrow_flag(self):
        r = [0]
        assert K.sub_words(r, [1], [2], 1) == 1
        assert K.sub_words(r, [2], [1], 1) == 0


class TestPropagateCarry:
    def test_ripple(self):
        r = [WORD_MASK, WORD_MASK, 5]
        escaped = K.propagate_carry(r, 0, 1)
        assert escaped == 0
        assert r == [0, 0, 6]

    def test_escape(self):
        r = [WORD_MASK]
        assert K.propagate_carry(r, 0, 1) == 1
        assert r == [0]

    def test_zero_carry_is_noop(self):
        r = [1, 2]
        assert K.propagate_carry(r, 0, 0) == 0
        assert r == [1, 2]


class TestConversions:
    @given(st.integers(0, 2**512))
    def test_int_roundtrip(self, value):
        assert to_int(K.words_from_int(value)) == value

    def test_padding(self):
        ws = K.words_from_int(7, nwords=4)
        assert ws == [7, 0, 0, 0]

    def test_padding_too_small_rejected(self):
        with pytest.raises(ValueError):
            K.words_from_int(1 << 64, nwords=1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            K.words_from_int(-1)

    def test_table9_mix_is_the_papers_nine_instructions(self):
        # Table 9: 4x movl, 1x mull, 2x addl, 2x adcl in the inner loop.
        core = {k: v for k, v in K.MULADD_WORD.counts.items()
                if k in ("movl", "mull", "addl", "adcl")}
        assert core == {"movl": 4.0, "mull": 1.0, "addl": 2.0, "adcl": 2.0}
