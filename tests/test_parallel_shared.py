"""Shared-cache topology on the process-parallel farm backend.

PR 5's lockstep pool only fanned out the partitioned topology; the
shared topology -- the mod_ssl shared-memory configuration real
deployments use -- silently fell back to the serial loop.  These tests
pin the round-boundary cache-sync protocol that removed the fallback:

* parallel runs are *bit-identical* to serial (full canonical
  signatures: merged cycles, transcripts, per-worker cycles, and the one
  shared cache's hit/miss/eviction counters) at 2 and 3 processes;
* cross-worker resumption -- worker A mints a session that worker B
  resumes in a later round -- survives the fan-out;
* the child-side cache mirror records a replayable mutation log, and
  ``SessionCache.replay`` folds it with serial-order accounting (and
  raises loudly on a hit/miss divergence instead of merging a
  non-identical result);
* a child that dies mid-protocol (or hangs / exits nonzero at finish)
  surfaces as a diagnostic naming the dead workers, not a raw
  ``EOFError`` or a silent ``terminate()``;
* ``FarmResult`` records requested-vs-effective parallelism so a
  degraded run is detectable without parsing ``backend``.
"""

from __future__ import annotations

import multiprocessing
import pickle

import pytest

from repro import runtime
from repro.crypto import rsa
from repro.perf import baseline
from repro.ssl.session import (
    CacheReplayDivergence, SessionCache, SslSession,
)
from repro.webserver import RequestWorkload, ServerFarm, SHARED
from repro.webserver.parallel import _join_worker, _recv, _SharedCacheMirror


def signature(result) -> str:
    """Canonical JSON of everything the determinism contract covers."""
    sig = baseline.capture(
        result.merged_profiler(), scenario="parallel-shared-test",
        extra={
            "requests_completed": result.requests_completed,
            "failures": result.failures,
            "resumed_handshakes": result.resumed_handshakes,
            "cross_worker_resumptions": result.cross_worker_resumptions,
            "wire_bytes": result.wire_bytes,
            "bytes_served": result.bytes_served,
            "per_worker_cycles": [r.profiler.total_cycles()
                                  for r in result.results],
            "shard_stats": result.shard_stats,
        })
    return baseline.canonical_json(sig)


def run_shared(identity, *, nworkers=2, parallel=0, policy="round-robin",
               nrequests=12, resumption_rate=0.5, session_lifetime=300.0,
               concurrency=2):
    key, cert = identity
    rsa.reset_error_tables()
    farm = ServerFarm(nworkers, topology=SHARED, policy=policy,
                      key=key, cert=cert, use_crt=True,
                      session_lifetime=session_lifetime)
    workload = RequestWorkload.fixed(2048, resumption_rate=resumption_rate)
    return farm.run(workload, nrequests, concurrency_per_worker=concurrency,
                    parallel=parallel)


def make_session(tag: bytes, created_at=0.0, lifetime=300.0) -> SslSession:
    return SslSession(session_id=tag.ljust(8, b"\0"), cipher_suite_id=0x0A,
                      master_secret=bytes(48), created_at=created_at,
                      lifetime=lifetime)


class TestSharedBitIdentity:
    @pytest.mark.parametrize("nworkers,nprocs", [(2, 2), (3, 3), (3, 2)])
    def test_matches_serial(self, identity512, nworkers, nprocs):
        serial = run_shared(identity512, nworkers=nworkers)
        par = run_shared(identity512, nworkers=nworkers, parallel=nprocs)
        assert serial.backend == "serial"
        assert par.backend == f"parallel:{nprocs}"
        assert signature(par) == signature(serial)

    def test_cross_worker_mint_then_resume(self, identity512):
        # Worker A mints on the first connection; the next resumable
        # connection round-robins onto worker B and must hit the shared
        # cache -- across the process boundary -- exactly as in serial.
        serial = run_shared(identity512, nrequests=8, resumption_rate=1.0)
        assert serial.cross_worker_resumptions > 0
        assert serial.resumed_handshakes > 0
        [shard] = serial.shard_stats
        assert shard["hits"] == serial.resumed_handshakes
        par = run_shared(identity512, nrequests=8, resumption_rate=1.0,
                         parallel=2)
        assert par.cross_worker_resumptions == serial.cross_worker_resumptions
        assert signature(par) == signature(serial)

    def test_affinity_policy(self, identity512):
        serial = run_shared(identity512, policy="session-affinity")
        par = run_shared(identity512, policy="session-affinity", parallel=2)
        assert par.backend == "parallel:2"
        assert signature(par) == signature(serial)

    def test_expiry_drops_fold_into_shared_counters(self, identity512):
        # A sub-cycle lifetime expires every minted session before it can
        # resume: each lookup takes the mirror's expiry-drop path and the
        # parent's replay must count the evictions exactly like serial.
        serial = run_shared(identity512, nrequests=8, resumption_rate=1.0,
                            session_lifetime=1e-12)
        [shard] = serial.shard_stats
        assert serial.resumed_handshakes == 0
        assert shard["evictions"] > 0
        par = run_shared(identity512, nrequests=8, resumption_rate=1.0,
                         session_lifetime=1e-12, parallel=2)
        assert par.shard_stats == serial.shard_stats
        assert signature(par) == signature(serial)

    def test_faithful_backend(self, identity512):
        with runtime.fastpath(False):
            serial = run_shared(identity512, nrequests=4)
            par = run_shared(identity512, nrequests=4, parallel=2)
        assert par.backend == "parallel:2"
        assert signature(par) == signature(serial)

    def test_matches_committed_perfgate_baseline(self):
        # The parallel run of the shared perfgate scenario must match the
        # baseline that was *recorded serially* and committed.
        from pathlib import Path

        from repro.tools.perfgate import baseline_path, capture_scenario
        path = baseline_path(Path("baselines"), "farm_2workers_shared")
        committed = baseline.load_json(path)
        with runtime.parallel(2):
            fresh = capture_scenario("farm_2workers_shared")
        assert baseline.diff_signatures(committed, fresh) == []


class TestRequestedVsEffective:
    def test_serial_run_records_request(self, identity512):
        result = run_shared(identity512, nrequests=4, parallel=0)
        assert result.parallel_requested == 0
        assert result.parallel_effective == 1

    def test_clamp_to_worker_count_is_visible(self, identity512):
        result = run_shared(identity512, nrequests=4, parallel=8)
        assert result.backend == "parallel:2"
        assert result.parallel_requested == 8
        assert result.parallel_effective == 2

    def test_env_default_is_recorded(self, identity512):
        with runtime.parallel(3):
            result = run_shared(identity512, nworkers=3, nrequests=4,
                                parallel=None)
        assert result.parallel_requested == 3
        assert result.parallel_effective == 3

    def test_empty_run_reports_effective_serial(self, identity512):
        # An empty workload never spawns a pool -- and the result says so
        # instead of leaving callers to parse backend.
        result = run_shared(identity512, nrequests=0, parallel=2)
        assert result.backend == "serial"
        assert result.parallel_requested == 2
        assert result.parallel_effective == 1
        assert result.requests_completed == 0


class TestSharedCacheMirror:
    def test_hit_logs_and_returns_entry(self):
        mirror = _SharedCacheMirror()
        s = make_session(b"a")
        mirror.entries[s.session_id] = s
        assert mirror.get(s.session_id, now=1.0) is s
        assert mirror.take_ops() == [("get", s.session_id, 1.0, True)]
        assert mirror.take_ops() == []  # drained

    def test_miss_logs(self):
        mirror = _SharedCacheMirror()
        assert mirror.get(b"missing!", now=None) is None
        assert mirror.take_ops() == [("get", b"missing!", None, False)]

    def test_expiry_drop_is_round_local(self):
        # Same-worker read-after-drop within one round must miss, like
        # the serial loop's second lookup after the first dropped it.
        mirror = _SharedCacheMirror()
        s = make_session(b"a", created_at=0.0, lifetime=1.0)
        mirror.entries[s.session_id] = s
        assert mirror.get(s.session_id, now=5.0) is None
        assert mirror.get(s.session_id, now=0.5) is None  # already dropped
        assert mirror.take_ops() == [("get", s.session_id, 5.0, False),
                                     ("get", s.session_id, 0.5, False)]

    def test_put_and_remove_log(self):
        mirror = _SharedCacheMirror()
        s = make_session(b"a")
        mirror.put(s)
        mirror.remove(b"gone....")
        assert mirror.take_ops() == [("put", s), ("remove", b"gone....")]

    def test_begin_round_clears_view(self):
        mirror = _SharedCacheMirror()
        mirror.entries[b"x"] = make_session(b"x")
        mirror.put(make_session(b"y"))
        mirror.begin_round()
        assert mirror.entries == {}
        assert mirror.take_ops() == []

    def test_mirror_pickles(self):
        mirror = _SharedCacheMirror()
        s = make_session(b"a")
        mirror.entries[s.session_id] = s
        clone = pickle.loads(pickle.dumps(mirror))
        assert clone.entries[s.session_id].master_secret == s.master_secret


class TestCacheReplay:
    def test_replay_reproduces_serial_accounting(self):
        # Drive the same op stream through a mirror (recording) and a
        # plain cache (the serial reference); replaying the log into a
        # fresh cache must land on the reference's stats and contents.
        reference = SessionCache(capacity=4)
        recorder = _SharedCacheMirror()
        a = make_session(b"a")
        b = make_session(b"b", created_at=0.0, lifetime=1.0)
        for cache in (reference, recorder):
            cache.put(a)
            cache.put(b)
        recorder.entries.update({a.session_id: a, b.session_id: b})
        for cache in (reference, recorder):
            assert cache.get(a.session_id, now=0.5) is a
            assert cache.get(b.session_id, now=5.0) is None   # expired
            assert cache.get(b"missing!", now=None) is None
            cache.remove(a.session_id)

        replayed = SessionCache(capacity=4)
        assert replayed.replay(recorder.take_ops()) == 6
        assert replayed.stats() == reference.stats()
        assert replayed.peek(a.session_id) is None
        assert replayed.peek(b.session_id) is None

    def test_benign_expired_vs_missing_disagreement(self):
        # Recorder saw its (stale) entry expire; the fold finds the entry
        # already dropped by an earlier worker.  Both sides missed, so
        # this is not a divergence -- and the fold counts a plain miss,
        # exactly as the serial second lookup would.
        cache = SessionCache()
        cache.replay([("get", b"stale!!!", 5.0, False)])
        assert cache.stats()["misses"] == 1
        assert cache.stats()["evictions"] == 0

    def test_hit_divergence_raises(self):
        cache = SessionCache()
        with pytest.raises(CacheReplayDivergence, match="parallel=0"):
            cache.replay([("get", b"gone....", None, True)])

    def test_miss_divergence_raises(self):
        cache = SessionCache()
        s = make_session(b"a")
        cache.put(s)
        with pytest.raises(CacheReplayDivergence):
            cache.replay([("get", s.session_id, 1.0, False)])

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown cache op"):
            SessionCache().replay([("frob", b"x")])


class _FakeProc:
    """Stand-in for a multiprocessing.Process in failure-path tests."""

    def __init__(self, exitcode, alive=False):
        self.exitcode = exitcode
        self._alive = alive
        self.joined = False

    def join(self, timeout=None):
        self.joined = True

    def is_alive(self):
        return self._alive


class TestWorkerFailureReporting:
    def test_dead_child_named_not_raw_eoferror(self):
        # A child that dies mid-protocol closes its pipe end; the parent
        # must surface the workers it owned and its exit code, not a bare
        # EOFError from conn.recv().
        parent_conn, child_conn = multiprocessing.Pipe()
        child_conn.close()
        with pytest.raises(RuntimeError,
                           match=r"workers \[1, 3\].*exit code -9"):
            _recv(parent_conn, _FakeProc(exitcode=-9), [1, 3])
        parent_conn.close()

    def test_error_message_names_workers(self):
        parent_conn, child_conn = multiprocessing.Pipe()
        child_conn.send(("error", "Traceback: boom"))
        with pytest.raises(RuntimeError, match=r"(?s)workers \[0, 2\].*boom"):
            _recv(parent_conn, _FakeProc(exitcode=1), [0, 2])
        parent_conn.close()
        child_conn.close()

    def test_normal_message_passes_through(self):
        parent_conn, child_conn = multiprocessing.Pipe()
        child_conn.send(("report", {}))
        assert _recv(parent_conn, _FakeProc(exitcode=None), [0]) == \
            ("report", {})
        parent_conn.close()
        child_conn.close()

    def test_join_raises_on_hang(self):
        with pytest.raises(RuntimeError, match=r"workers \[1\].*not exit"):
            _join_worker(_FakeProc(exitcode=None, alive=True), [1],
                         timeout=0.01)

    def test_join_raises_on_nonzero_exit(self):
        with pytest.raises(RuntimeError, match=r"exited with code 3"):
            _join_worker(_FakeProc(exitcode=3), [0])

    def test_join_accepts_clean_exit(self):
        proc = _FakeProc(exitcode=0)
        _join_worker(proc, [0])
        assert proc.joined
