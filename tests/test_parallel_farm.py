"""Process-parallel farm backend: bit-identity with the serial loop.

The contract (DESIGN.md "Execution backends"): ``ServerFarm.run`` with
``parallel=N`` produces the *same signature* -- merged profile, per-worker
cycles, transcript bytes, cache counters, batch histograms -- as the
serial loop, for every topology/policy combination.  Both topologies fan
out: partitioned shards ship with the worker states, the one shared
cache stays authoritative in the parent and is synchronised at round
boundaries (tests/test_parallel_shared.py covers that protocol in
depth).  These tests pin the contract with full canonical baseline
signatures, not spot checks.
"""

from __future__ import annotations

import pickle

import pytest

from repro import runtime
from repro.crypto import rsa
from repro.crypto.batch_rsa import generate_batch_keys
from repro.crypto.rand import PseudoRandom
from repro.engines import default_engine_config
from repro.perf import baseline
from repro.webserver import PARTITIONED, SHARED, RequestWorkload, ServerFarm
from repro.webserver.parallel import _ClientPoolMirror


@pytest.fixture(scope="module")
def batch_keys():
    return generate_batch_keys(512, 4, rng=PseudoRandom(b"par-batch"))


def workload(resumption_rate=0.5, size=2048):
    return RequestWorkload.fixed(size, resumption_rate=resumption_rate)


def signature(result) -> str:
    """Canonical JSON of everything the determinism contract covers."""
    sig = baseline.capture(
        result.merged_profiler(), scenario="parallel-farm-test",
        extra={
            "requests_completed": result.requests_completed,
            "failures": result.failures,
            "resumed_handshakes": result.resumed_handshakes,
            "cross_worker_resumptions": result.cross_worker_resumptions,
            "wire_bytes": result.wire_bytes,
            "bytes_served": result.bytes_served,
            "batched_ops": result.batched_ops,
            "batches": {str(k): v
                        for k, v in sorted(result.batch_histogram().items())},
            "per_worker_cycles": [r.profiler.total_cycles()
                                  for r in result.results],
            "shard_stats": result.shard_stats,
            "offload": [r.offload for r in result.results],
        })
    return baseline.canonical_json(sig)


def run_farm(identity, *, nworkers=4, parallel=0, policy="round-robin",
             topology=PARTITIONED, key_set=None, nrequests=12,
             resumption_rate=0.5):
    key, cert = identity
    rsa.reset_error_tables()
    farm = ServerFarm(nworkers, topology=topology, policy=policy,
                      key=key, cert=cert, use_crt=True, key_set=key_set,
                      batch_size=2 if key_set is not None else None)
    result = farm.run(workload(resumption_rate), nrequests,
                      concurrency_per_worker=2, parallel=parallel)
    return result


class TestParallelBitIdentity:
    @pytest.mark.parametrize("nprocs", [2, 4])
    def test_partitioned_round_robin(self, identity512, nprocs):
        serial = run_farm(identity512, parallel=0)
        par = run_farm(identity512, parallel=nprocs)
        assert par.backend == f"parallel:{nprocs}"
        assert signature(par) == signature(serial)

    def test_partitioned_affinity(self, identity512):
        serial = run_farm(identity512, policy="session-affinity")
        par = run_farm(identity512, policy="session-affinity", parallel=2)
        assert par.backend == "parallel:2"
        assert signature(par) == signature(serial)

    def test_partitioned_least_connections(self, identity512):
        serial = run_farm(identity512, policy="least-connections")
        par = run_farm(identity512, policy="least-connections", parallel=4)
        assert signature(par) == signature(serial)

    def test_batch_rsa_farm(self, identity512, batch_keys):
        serial = run_farm(identity512, nworkers=2, key_set=batch_keys,
                          resumption_rate=0.25, nrequests=8)
        par = run_farm(identity512, nworkers=2, key_set=batch_keys,
                       resumption_rate=0.25, nrequests=8, parallel=2)
        assert par.backend == "parallel:2"
        assert par.batched_ops == serial.batched_ops > 0
        assert signature(par) == signature(serial)

    def test_faithful_backend_ships_to_children(self, identity512):
        # Children must inherit the runtime fastpath setting, not re-read
        # the environment: tests toggle it at runtime.
        with runtime.fastpath(False):
            serial = run_farm(identity512, nworkers=2, nrequests=4)
            par = run_farm(identity512, nworkers=2, nrequests=4, parallel=2)
        assert signature(par) == signature(serial)

    def test_matches_committed_perfgate_baseline(self):
        # The parallel run of the partitioned perfgate scenario must match
        # the baseline that was *recorded serially* and committed.
        from pathlib import Path

        from repro.tools.perfgate import baseline_path, capture_scenario
        path = baseline_path(Path("baselines"), "farm_2workers_partitioned")
        committed = baseline.load_json(path)
        with runtime.parallel(2):
            fresh = capture_scenario("farm_2workers_partitioned")
        assert baseline.diff_signatures(committed, fresh) == []


def run_engine_farm(identity, *, parallel=0, nworkers=3):
    key, cert = identity
    rsa.reset_error_tables()
    farm = ServerFarm(nworkers, topology=SHARED, key=key, cert=cert,
                      use_crt=True, engines=default_engine_config())
    result = farm.run(workload(size=8192), 9,
                      concurrency_per_worker=2, parallel=parallel)
    return result


class TestOffloadDeterminism:
    """Engine pools are worker-local state: the parallel backend ships
    them with the worker pickles and must merge back bit-identical
    results -- including every pool counter and unit timeline."""

    def test_engine_pool_bit_identical(self, identity512):
        serial = run_engine_farm(identity512, parallel=0)
        par = run_engine_farm(identity512, parallel=3)
        assert par.backend == "parallel:3"
        assert par.offload_summary() == serial.offload_summary()
        assert signature(par) == signature(serial)

    def test_parallel_one_matches_parallel_three(self, identity512):
        one = run_engine_farm(identity512, parallel=1)    # serial path
        three = run_engine_farm(identity512, parallel=3)
        assert one.backend == "serial"
        assert one.offload_summary() == three.offload_summary()
        assert signature(one) == signature(three)


class TestRoundZeroFanOut:
    def test_no_parent_side_serial_prefix(self, identity512, monkeypatch):
        # Workers fan out at round 0: the parent never steps connections.
        # (The old protocol burned a serial prefix in-parent until the
        # ERR_load one-shot had been charged.)  Forked children inherit
        # the counting patch but append to their *own* copy of the list,
        # so any parent-side private-key work would show up here.
        calls = []
        original = rsa.RsaPrivateKey.decrypt

        def counting(key, ciphertext):
            calls.append(1)
            return original(key, ciphertext)

        monkeypatch.setattr(rsa.RsaPrivateKey, "decrypt", counting)
        serial = run_farm(identity512, nworkers=2, nrequests=4)
        assert calls                      # serial loop decrypts in-parent
        calls.clear()
        par = run_farm(identity512, nworkers=2, nrequests=4, parallel=2)
        assert par.requests_completed == serial.requests_completed
        assert not calls                  # parent did no crypto at all
        assert signature(par) == signature(serial)


class TestBackendSelection:
    def test_shared_topology_fans_out(self, identity512):
        # PR 5 kept shared-cache farms on a serial fallback; the
        # round-boundary cache sync removed it.  The run must actually
        # fan out -- and stay bit-identical to the serial loop.
        serial = run_farm(identity512, topology=SHARED, parallel=0)
        par = run_farm(identity512, topology=SHARED, parallel=4)
        assert par.backend == "parallel:4"
        assert (par.parallel_requested, par.parallel_effective) == (4, 4)
        assert signature(par) == signature(serial)

    def test_env_knob_engages_pool(self, identity512):
        with runtime.parallel(2):
            result = run_farm(identity512, parallel=None)
        assert result.backend == "parallel:2"

    def test_env_knob_default_is_serial(self, identity512):
        result = run_farm(identity512, nworkers=2, nrequests=4,
                          parallel=None)
        assert result.backend == "serial"

    def test_pool_clamped_to_worker_count(self, identity512):
        result = run_farm(identity512, nworkers=2, nrequests=4, parallel=8)
        assert result.backend == "parallel:2"

    def test_parallel_one_is_serial(self, identity512):
        result = run_farm(identity512, nworkers=2, nrequests=4, parallel=1)
        assert result.backend == "serial"

    def test_wall_seconds_recorded(self, identity512):
        result = run_farm(identity512, nworkers=2, nrequests=4)
        assert result.wall_seconds > 0.0
        other = run_farm(identity512, nworkers=2, nrequests=4)
        assert other.wall_speedup_over(result) > 0.0

    def test_set_parallel_rejects_negative(self):
        with pytest.raises(ValueError):
            runtime.set_parallel(-1)

    def test_spawn_start_method(self, identity512, monkeypatch):
        # Spawn children import everything fresh; the run must still be
        # bit-identical (one small run -- spawn startup is expensive).
        monkeypatch.setenv("REPRO_PARALLEL_START", "spawn")
        serial = run_farm(identity512, nworkers=2, nrequests=4)
        par = run_farm(identity512, nworkers=2, nrequests=4, parallel=2)
        assert par.backend == "parallel:2"
        assert signature(par) == signature(serial)

    def test_bad_start_method_rejected(self, identity512, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_START", "bogus")
        with pytest.raises(ValueError, match="REPRO_PARALLEL_START"):
            run_farm(identity512, nworkers=2, nrequests=4, parallel=2)


class TestClientPoolMirror:
    def test_reads_only_injected_offer(self):
        from repro.webserver.workload import Request
        request = Request(path="/r", size_bytes=1024, resumable=True)
        mirror = _ClientPoolMirror(3)
        assert mirror.offer(request) is None
        mirror.offered = object()
        assert mirror.offer(request) is mirror.offered

    def test_collects_minted_sessions(self):
        from repro.webserver.workload import Request
        request = Request(path="/r", size_bytes=1024, resumable=True)
        mirror = _ClientPoolMirror(0)
        s1, s2 = object(), object()
        mirror.store(None, s1)
        mirror.store(7, s2)
        mirror.store(8, None)  # failed handshakes are not collected
        assert mirror.minted == [(None, s1), (7, s2)]
        # Minted sessions are not offerable locally: only the parent's
        # shipped offer is served.
        assert mirror.offer(request) is None

    def test_mirror_pickles(self):
        mirror = _ClientPoolMirror(1)
        clone = pickle.loads(pickle.dumps(mirror))
        assert clone.current_worker == 1
        assert clone.minted == []
