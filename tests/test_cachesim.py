"""Cache model and kernel working-set residency."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.perf.cachesim import (
    ResidencyResult, SetAssociativeCache, STREAMS, pentium4_l1d, residency,
)


class TestCacheModel:
    def test_geometry(self):
        c = pentium4_l1d()
        assert c.size_bytes == 8192
        assert c.nsets == 8192 // (64 * 4)

    @pytest.mark.parametrize("bad", [
        dict(size_bytes=0), dict(line_bytes=0), dict(associativity=0),
        dict(size_bytes=1000),            # not a multiple of line*assoc
        dict(line_bytes=48),              # not a power of two
    ])
    def test_bad_geometry_rejected(self, bad):
        kwargs = dict(size_bytes=8192, line_bytes=64, associativity=4)
        kwargs.update(bad)
        with pytest.raises(ValueError):
            SetAssociativeCache(**kwargs)

    def test_cold_miss_then_hit(self):
        c = SetAssociativeCache(1024, 64, 2)
        assert not c.access(0)
        assert c.access(0)
        assert c.access(63)          # same line
        assert not c.access(64)      # next line
        assert c.hits == 2 and c.misses == 2

    def test_lru_eviction_within_set(self):
        c = SetAssociativeCache(256, 64, 2)  # 2 sets, 2 ways
        set_stride = c.nsets * 64            # same-set stride
        a, b, d = 0, set_stride, 2 * set_stride
        c.access(a)
        c.access(b)
        c.access(a)       # refresh a -> b is LRU
        c.access(d)       # evicts b
        assert c.access(a)
        assert not c.access(b)

    def test_fully_resident_working_set(self):
        c = SetAssociativeCache(4096, 64, 4)
        for _ in range(10):
            for addr in range(0, 2048, 4):
                c.access(addr)
        # After the cold pass, everything hits.
        assert c.hit_rate() > 0.95

    def test_thrashing_working_set(self):
        c = SetAssociativeCache(1024, 64, 1)  # direct-mapped, tiny
        # Two addresses mapping to the same set, alternating: 100% misses
        # after the cold pass too.
        stride = c.nsets * 64
        for _ in range(50):
            c.access(0)
            c.access(stride)
        assert c.hit_rate() < 0.05

    def test_reset_and_flush(self):
        c = pentium4_l1d()
        c.access(0)
        c.reset_stats()
        assert c.accesses == 0
        assert c.access(0)   # line still resident
        c.flush()
        assert not c.access(0)

    @given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_accounting_invariant(self, addresses):
        c = SetAssociativeCache(2048, 64, 2)
        c.access_all(iter(addresses))
        assert c.hits + c.misses == len(addresses)
        assert 0.0 <= c.hit_rate() <= 1.0

    @given(st.lists(st.integers(0, 4095), min_size=2, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_small_footprint_mostly_hits(self, addresses):
        """Any stream confined to a cache-sized region converges to hits."""
        c = SetAssociativeCache(8192, 64, 4)
        for _ in range(3):
            c.access_all(iter(addresses))
        c.reset_stats()
        c.access_all(iter(addresses))
        assert c.hit_rate() == 1.0


class TestResidency:
    @pytest.mark.parametrize("kernel", sorted(STREAMS))
    def test_all_kernels_l1_resident_at_8kb(self, kernel):
        """The paper's claim: crypto kernels hit in the P4's 8 KB L1D."""
        r = residency(kernel, nbytes=8192)
        assert r.hit_rate > 0.97, (kernel, r.hit_rate)

    def test_aes_breaks_on_tiny_cache(self):
        """Counterfactual: AES's 4 KB of Te tables thrash a 2 KB cache."""
        small = residency("aes", 8192, SetAssociativeCache(2048, 64, 4))
        full = residency("aes", 8192)
        assert small.hit_rate < 0.8 < full.hit_rate

    def test_rc4_state_fits_anywhere(self):
        """RC4's 256-byte state survives even a tiny cache."""
        r = residency("rc4", 8192, SetAssociativeCache(1024, 64, 4))
        assert r.hit_rate > 0.9

    def test_unknown_kernel(self):
        with pytest.raises(KeyError):
            residency("chacha20")

    def test_streams_are_deterministic(self):
        a = list(STREAMS["aes"](1024))
        b = list(STREAMS["aes"](1024))
        assert a == b

    def test_result_fields(self):
        r = residency("md5", 4096)
        assert isinstance(r, ResidencyResult)
        assert r.kernel == "md5"
        assert r.cache_bytes == 8192
        assert r.accesses > 0


class TestHierarchy:
    def test_amat_near_l1_latency_for_crypto(self):
        """Steady state (after a warm-up pass): AMAT sits within a tenth
        of a cycle of the pure L1 hit time -- the basis for the cost
        model's flat movl pricing."""
        from repro.perf.cachesim import CacheHierarchy, kernel_amat
        for kernel in ("aes", "rc4", "md5", "rsa"):
            h = CacheHierarchy()
            kernel_amat(kernel, hierarchy=h)   # warm-up (cold misses)
            h.reset_stats()
            r = kernel_amat(kernel, hierarchy=h)
            assert r.l1_hit_rate > 0.99, kernel
            assert r.amat_cycles < h.l1_hit_cycles + 0.15, \
                (kernel, r.amat_cycles)

    def test_l2_catches_l1_misses(self):
        from repro.perf.cachesim import (
            CacheHierarchy, SetAssociativeCache, kernel_amat,
        )
        # Tiny L1: AES thrashes it, but the 512 KB L2 holds the tables.
        h = CacheHierarchy(l1=SetAssociativeCache(2048, 64, 4))
        r = kernel_amat("aes", hierarchy=h)
        assert r.l1_hit_rate < 0.8
        assert r.l2_hit_rate > 0.9
        assert r.memory_accesses < 200   # only cold misses reach memory
        assert r.amat_cycles < 12

    def test_cold_start_memory_accesses(self):
        from repro.perf.cachesim import kernel_amat
        r = kernel_amat("aes")
        # Cold misses for ~4 KB tables + key schedule + data: bounded.
        assert 0 < r.memory_accesses < 400

    def test_latency_ordering(self):
        from repro.perf.cachesim import CacheHierarchy
        h = CacheHierarchy()
        first = h.access(0)       # cold: memory
        again = h.access(0)       # L1 hit
        assert first == h.memory_cycles
        assert again == h.l1_hit_cycles

    def test_unknown_kernel(self):
        from repro.perf.cachesim import kernel_amat
        with pytest.raises(KeyError):
            kernel_amat("grain128")

    def test_empty_stream(self):
        from repro.perf.cachesim import CacheHierarchy
        r = CacheHierarchy().run(iter(()))
        assert r.accesses == 0 and r.amat_cycles == 0.0
