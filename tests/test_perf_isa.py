"""Unit tests for instruction classes and InstrMix algebra."""

import pytest
from hypothesis import given, strategies as st

from repro.perf import CATEGORY, I, InstrMix, MixAccumulator, mix
from repro.perf.isa import ALL_MNEMONICS


class TestInstrMixConstruction:
    def test_empty_mix(self):
        m = InstrMix.empty()
        assert m.total() == 0
        assert not m
        assert m.counts == {}

    def test_keyword_builder(self):
        m = mix(movl=4, mull=1, addl=2, adcl=2)
        assert m.total() == 9
        assert m.count(I.MULL) == 1

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(ValueError, match="unknown instruction"):
            InstrMix({"bogus": 1})

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            InstrMix({I.MOVL: -1})

    def test_zero_counts_dropped(self):
        m = InstrMix({I.MOVL: 0, I.XORL: 2})
        assert m.counts == {I.XORL: 2.0}

    def test_fractional_counts_allowed(self):
        m = mix(jnz=0.25, decl=0.25)
        assert m.total() == pytest.approx(0.5)

    def test_counts_returns_copy(self):
        m = mix(movl=1)
        m.counts[I.MOVL] = 99
        assert m.count(I.MOVL) == 1


class TestInstrMixAlgebra:
    def test_scale(self):
        m = mix(movl=2, xorl=1)
        assert (m * 3).count(I.MOVL) == 6
        assert (3 * m).count(I.XORL) == 3

    def test_scale_by_one_returns_self(self):
        m = mix(movl=2)
        assert m.scaled(1) is m

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            mix(movl=1).scaled(-2)

    def test_add(self):
        a = mix(movl=2, xorl=1)
        b = mix(movl=1, addl=4)
        c = a + b
        assert c.count(I.MOVL) == 3
        assert c.count(I.ADDL) == 4
        assert c.total() == 8

    def test_equality(self):
        assert mix(movl=2) == mix(movl=2)
        assert mix(movl=2) != mix(movl=3)

    def test_composition_example(self):
        block = mix(movl=10) + mix(xorl=4) * 9 + mix(ret=1)
        assert block.total() == 10 + 36 + 1


class TestInstrMixInspection:
    def test_shares_sum_to_one(self):
        m = mix(movl=3, xorl=1)
        shares = m.shares()
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares[I.MOVL] == pytest.approx(0.75)

    def test_empty_shares(self):
        assert InstrMix.empty().shares() == {}

    def test_top_ordering(self):
        m = mix(movl=5, xorl=3, addl=1)
        top = m.top(2)
        assert [name for name, _ in top] == [I.MOVL, I.XORL]

    def test_top_ties_break_alphabetically(self):
        m = mix(xorl=1, addl=1)
        assert [n for n, _ in m.top(2)] == [I.ADDL, I.XORL]

    def test_by_category(self):
        m = mix(movl=2, movb=1, xorl=3, mull=1)
        cats = m.by_category()
        assert cats["mem"] == 3
        assert cats["logic"] == 3
        assert cats["mul"] == 1

    def test_every_mnemonic_has_category(self):
        for name in ALL_MNEMONICS:
            assert CATEGORY[name] in {
                "mem", "alu", "logic", "mul", "shift", "ctrl", "stack",
                "nop"}


class TestMixAccumulator:
    def test_accumulate_and_snapshot(self):
        acc = MixAccumulator()
        acc.add(mix(movl=2), times=3)
        acc.add(mix(xorl=1))
        snap = acc.snapshot()
        assert snap.count(I.MOVL) == 6
        assert snap.count(I.XORL) == 1

    def test_total_without_fold(self):
        acc = MixAccumulator()
        acc.add(mix(movl=2, addl=1), times=10)
        assert acc.total() == 30

    def test_total_consistent_after_snapshot(self):
        acc = MixAccumulator()
        acc.add(mix(movl=2), times=5)
        acc.snapshot()
        acc.add(mix(xorl=4))
        assert acc.total() == 14

    @given(st.lists(st.tuples(st.integers(1, 20), st.integers(1, 9)),
                    min_size=1, max_size=30))
    def test_accumulator_matches_direct_sum(self, chunks):
        acc = MixAccumulator()
        expected = 0
        for count, times in chunks:
            acc.add(mix(movl=count), times=times)
            expected += count * times
        assert acc.snapshot().count(I.MOVL) == pytest.approx(expected)


@given(st.dictionaries(st.sampled_from(ALL_MNEMONICS),
                       st.floats(0.01, 1000), min_size=1, max_size=10),
       st.floats(0.1, 100))
def test_scaling_preserves_shares(counts, factor):
    m = InstrMix(counts)
    scaled = m * factor
    assert scaled.total() == pytest.approx(m.total() * factor, rel=1e-9)
    for name, share in m.shares().items():
        assert scaled.shares()[name] == pytest.approx(share, rel=1e-9)
