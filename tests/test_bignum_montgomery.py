"""Unit + property tests for Montgomery arithmetic."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bignum import BigNum, MontgomeryContext

odd_modulus = st.integers(3, 2**256).map(lambda x: x | 1)


class TestContext:
    def test_even_modulus_rejected(self):
        with pytest.raises(ValueError, match="odd"):
            MontgomeryContext(BigNum.from_int(100))

    def test_zero_modulus_rejected(self):
        with pytest.raises(ValueError):
            MontgomeryContext(BigNum.zero())

    def test_n0_is_word_negative_inverse(self):
        m = 0xF123456789ABCDEF | 1
        ctx = MontgomeryContext(BigNum.from_int(m))
        w0 = m & 0xFFFFFFFF
        assert (ctx.n0 * w0) % (1 << 32) == (-1) % (1 << 32)

    @given(odd_modulus)
    @settings(max_examples=30)
    def test_rr_is_r_squared_mod_n(self, m):
        ctx = MontgomeryContext(BigNum.from_int(m))
        r = 1 << (32 * ctx.nwords)
        assert ctx.rr.to_int() == (r * r) % m


class TestOperations:
    @given(odd_modulus, st.integers(0, 2**256))
    @settings(max_examples=40)
    def test_to_from_roundtrip(self, m, a):
        ctx = MontgomeryContext(BigNum.from_int(m))
        a %= m
        back = ctx.from_mont(ctx.to_mont(BigNum.from_int(a)))
        assert back.to_int() == a

    @given(odd_modulus, st.integers(0, 2**256), st.integers(0, 2**256))
    @settings(max_examples=40)
    def test_mul_matches_modular_product(self, m, a, b):
        ctx = MontgomeryContext(BigNum.from_int(m))
        a, b = a % m, b % m
        am = ctx.to_mont(BigNum.from_int(a))
        bm = ctx.to_mont(BigNum.from_int(b))
        product = ctx.from_mont(ctx.mul(am, bm))
        assert product.to_int() == (a * b) % m

    @given(odd_modulus, st.integers(0, 2**256))
    @settings(max_examples=30)
    def test_sqr_matches_mul(self, m, a):
        ctx = MontgomeryContext(BigNum.from_int(m))
        am = ctx.to_mont(BigNum.from_int(a % m))
        assert ctx.sqr(am).to_int() == ctx.mul(am, am).to_int()

    @given(odd_modulus)
    @settings(max_examples=30)
    def test_one_is_montgomery_form_of_one(self, m):
        ctx = MontgomeryContext(BigNum.from_int(m))
        assert ctx.from_mont(ctx.one()).to_int() == 1 % m

    def test_result_always_reduced(self):
        # Exercise the conditional-subtract path with values near n.
        m = (1 << 128) - 159  # odd
        ctx = MontgomeryContext(BigNum.from_int(m))
        for a in (m - 1, m - 2, 1, 2):
            am = ctx.to_mont(BigNum.from_int(a))
            sq = ctx.mul(am, am)
            assert sq.to_int() < m

    def test_charges_the_papers_functions(self, isolated_profiler):
        m = (1 << 128) + 1
        ctx = MontgomeryContext(BigNum.from_int(m))
        a = ctx.to_mont(BigNum.from_int(12345))
        ctx.mul(a, a)
        names = set(isolated_profiler.functions)
        assert {"bn_mul_add_words", "bn_sub_words",
                "BN_from_montgomery"} <= names


class TestSeparateReduction:
    """The OpenSSL 0.9.7-style reduction must agree with the interleaved
    one bit-for-bit and cost visibly more."""

    @given(odd_modulus, st.integers(0, 2**256), st.integers(0, 2**256))
    @settings(max_examples=30)
    def test_agrees_with_interleaved(self, m, a, b):
        mod = BigNum.from_int(m)
        fast = MontgomeryContext(mod, reduction="interleaved")
        compat = MontgomeryContext(mod, reduction="separate")
        a, b = a % m, b % m
        fast_result = fast.from_mont(fast.mul(fast.to_mont(BigNum.from_int(a)),
                                              fast.to_mont(BigNum.from_int(b))))
        compat_result = compat.from_mont(
            compat.mul(compat.to_mont(BigNum.from_int(a)),
                       compat.to_mont(BigNum.from_int(b))))
        assert fast_result == compat_result
        assert fast_result.to_int() == (a * b) % m

    def test_costs_more(self):
        from repro import perf
        m = BigNum.from_int((1 << 512) + 75)
        costs = {}
        for style in ("interleaved", "separate"):
            ctx = MontgomeryContext(m, reduction=style)
            x = ctx.to_mont(BigNum.from_int(12345))
            p = perf.Profiler()
            with perf.activate(p):
                for _ in range(8):
                    x = ctx.mul(x, x)
            costs[style] = p.total_cycles()
        assert 1.3 < costs["separate"] / costs["interleaved"] < 2.5

    def test_unknown_style_rejected(self):
        with pytest.raises(ValueError, match="reduction"):
            MontgomeryContext(BigNum.from_int(99), reduction="magic")
