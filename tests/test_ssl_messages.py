"""Handshake message serialization/parsing and the codec layer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ssl.codec import ByteReader, ByteWriter
from repro.ssl.errors import DecodeError
from repro.ssl.handshake import (
    CertificateMsg, ClientHello, ClientKeyExchange, Finished, HandshakeType,
    HelloRequest, ServerHello, ServerHelloDone, iter_messages, parse_message,
)

RAND = bytes(range(32))


class TestCodec:
    def test_integer_widths(self):
        w = ByteWriter().u8(0xAB).u16(0x1234).u24(0x56789A).u32(0xDEADBEEF)
        r = ByteReader(w.bytes())
        assert (r.u8(), r.u16(), r.u24(), r.u32()) == (
            0xAB, 0x1234, 0x56789A, 0xDEADBEEF)
        r.expect_end()

    @pytest.mark.parametrize("method,value", [
        ("u8", 256), ("u16", 1 << 16), ("u24", 1 << 24), ("u32", 1 << 32),
        ("u8", -1),
    ])
    def test_out_of_range_rejected(self, method, value):
        with pytest.raises(ValueError):
            getattr(ByteWriter(), method)(value)

    def test_vectors_roundtrip(self):
        w = ByteWriter().vec8(b"a").vec16(b"bb").vec24(b"ccc")
        r = ByteReader(w.bytes())
        assert (r.vec8(), r.vec16(), r.vec24()) == (b"a", b"bb", b"ccc")

    def test_truncation_detected(self):
        with pytest.raises(DecodeError):
            ByteReader(b"\x05abc").vec8()

    def test_trailing_bytes_detected(self):
        r = ByteReader(b"ab")
        r.u8()
        with pytest.raises(DecodeError):
            r.expect_end()

    def test_rest_and_remaining(self):
        r = ByteReader(b"abcdef")
        r.raw(2)
        assert r.remaining() == 4
        assert r.rest() == b"cdef"
        assert r.remaining() == 0


class TestClientHello:
    def test_roundtrip(self):
        msg = ClientHello(client_random=RAND, session_id=b"sess",
                          cipher_suites=(0x0A, 0x2F),
                          compression_methods=(0,))
        parsed = ClientHello.parse(msg.body())
        assert parsed == msg

    def test_wire_format(self):
        msg = ClientHello(client_random=RAND, cipher_suites=(0x0A,))
        body = msg.body()
        assert body[:2] == b"\x03\x00"
        assert body[2:34] == RAND

    def test_full_message_framing(self):
        msg = ClientHello(client_random=RAND, cipher_suites=(0x0A,))
        raw = msg.to_bytes()
        assert raw[0] == HandshakeType.CLIENT_HELLO
        assert int.from_bytes(raw[1:4], "big") == len(raw) - 4

    def test_empty_suites_rejected_on_parse(self):
        msg = ClientHello(client_random=RAND, cipher_suites=())
        with pytest.raises(DecodeError):
            ClientHello.parse(msg.body())

    def test_bad_random_length(self):
        with pytest.raises(ValueError):
            ClientHello(client_random=b"short", cipher_suites=(1,)).body()

    def test_odd_suite_bytes_rejected(self):
        good = ClientHello(client_random=RAND, cipher_suites=(0x0A,))
        body = bytearray(good.body())
        # suites vector sits after version+random+session_id; corrupt its
        # length to be odd
        idx = 2 + 32
        sid_len = body[idx]
        vec_at = idx + 1 + sid_len
        body[vec_at:vec_at + 2] = (3).to_bytes(2, "big")
        body.insert(vec_at + 2, 0)
        with pytest.raises(DecodeError):
            ClientHello.parse(bytes(body))


class TestServerHello:
    def test_roundtrip(self):
        msg = ServerHello(server_random=RAND, session_id=b"x" * 32,
                          cipher_suite=0x000A)
        assert ServerHello.parse(msg.body()) == msg

    def test_empty_session_id_ok(self):
        msg = ServerHello(server_random=RAND, session_id=b"",
                          cipher_suite=5)
        assert ServerHello.parse(msg.body()).session_id == b""


class TestOtherMessages:
    def test_certificate_chain_roundtrip(self):
        msg = CertificateMsg(certificates=[b"leaf-cert", b"ca-cert"])
        parsed = CertificateMsg.parse(msg.body())
        assert parsed.certificates == [b"leaf-cert", b"ca-cert"]

    def test_empty_chain_roundtrip(self):
        assert CertificateMsg.parse(
            CertificateMsg(certificates=[]).body()).certificates == []

    def test_server_hello_done(self):
        assert ServerHelloDone.parse(b"") == ServerHelloDone()
        with pytest.raises(DecodeError):
            ServerHelloDone.parse(b"junk")

    def test_client_kx_is_raw_premaster(self):
        """SSLv3 quirk: no length prefix on the encrypted pre-master."""
        msg = ClientKeyExchange(encrypted_pre_master=b"E" * 64)
        assert msg.body() == b"E" * 64
        assert ClientKeyExchange.parse(b"E" * 64).encrypted_pre_master == \
            b"E" * 64

    def test_empty_client_kx_rejected(self):
        with pytest.raises(DecodeError):
            ClientKeyExchange.parse(b"")

    def test_finished_shape_sslv3(self):
        msg = Finished(verify_data=bytes(36))
        assert len(msg.body()) == 36
        parsed = Finished.parse(msg.body())
        assert parsed.md5_hash == bytes(16)
        assert parsed.sha1_hash == bytes(20)
        with pytest.raises(DecodeError):
            Finished.parse(bytes(35))

    def test_finished_shape_tls(self):
        msg = Finished(verify_data=bytes(range(12)))
        assert Finished.parse(msg.body()).verify_data == bytes(range(12))
        with pytest.raises(ValueError):
            Finished(verify_data=bytes(13)).body()

    def test_client_kx_tls_format(self):
        msg = ClientKeyExchange(encrypted_pre_master=b"E" * 64,
                                tls_format=True)
        body = msg.body()
        assert body[:2] == (64).to_bytes(2, "big")
        parsed = ClientKeyExchange.parse_versioned(body, is_tls=True)
        assert parsed.encrypted_pre_master == b"E" * 64
        # SSLv3 interpretation of the same bytes keeps the prefix.
        raw = ClientKeyExchange.parse_versioned(body, is_tls=False)
        assert raw.encrypted_pre_master == body

    def test_hello_request(self):
        assert HelloRequest.parse(b"") == HelloRequest()


class TestMessageStream:
    def test_iter_messages_pops_complete(self):
        buf = bytearray(ClientHello(client_random=RAND,
                                    cipher_suites=(1,)).to_bytes()
                        + ServerHelloDone().to_bytes())
        msgs = iter_messages(buf)
        assert [t for t, _, _ in msgs] == [HandshakeType.CLIENT_HELLO,
                                           HandshakeType.SERVER_HELLO_DONE]
        assert not buf

    def test_iter_messages_keeps_partial(self):
        raw = ClientHello(client_random=RAND,
                          cipher_suites=(1,)).to_bytes()
        buf = bytearray(raw[:10])
        assert iter_messages(buf) == []
        assert len(buf) == 10
        buf += raw[10:]
        assert len(iter_messages(buf)) == 1

    def test_raw_preserved_for_transcript(self):
        raw = ServerHelloDone().to_bytes()
        buf = bytearray(raw)
        [(_, _, got_raw)] = iter_messages(buf)
        assert got_raw == raw

    def test_parse_message_dispatch(self):
        msg = parse_message(HandshakeType.SERVER_HELLO_DONE, b"")
        assert isinstance(msg, ServerHelloDone)

    def test_parse_message_unknown_type(self):
        with pytest.raises(DecodeError):
            parse_message(99, b"")

    @given(st.binary(min_size=32, max_size=32), st.binary(max_size=32),
           st.lists(st.integers(0, 0xFFFF), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_client_hello_roundtrip_property(self, random, sid, suites):
        msg = ClientHello(client_random=random, session_id=sid,
                          cipher_suites=tuple(suites))
        assert ClientHello.parse(msg.body()) == msg
