"""SSLv3 key derivation tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.md5 import MD5
from repro.crypto.sha1 import SHA1
from repro.ssl import kdf

PRE = bytes(range(48))
CR = bytes(range(32))
SR = bytes(range(32, 64))


class TestDerive:
    def test_length_exact(self):
        for n in (0, 1, 15, 16, 17, 48, 104):
            assert len(kdf.derive(PRE, CR, SR, n)) == n

    def test_deterministic(self):
        assert kdf.derive(PRE, CR, SR, 64) == kdf.derive(PRE, CR, SR, 64)

    def test_prefix_consistency(self):
        """Longer derivations extend shorter ones (block structure)."""
        short = kdf.derive(PRE, CR, SR, 32)
        long = kdf.derive(PRE, CR, SR, 80)
        assert long[:32] == short

    def test_salt_progression_changes_blocks(self):
        out = kdf.derive(PRE, CR, SR, 48)
        blocks = [out[i:i + 16] for i in range(0, 48, 16)]
        assert len(set(blocks)) == 3

    def test_random_order_matters(self):
        assert kdf.derive(PRE, CR, SR, 16) != kdf.derive(PRE, SR, CR, 16)

    def test_block_limit(self):
        with pytest.raises(ValueError):
            kdf.derive(PRE, CR, SR, 26 * 16 + 1)

    def test_negative_length(self):
        with pytest.raises(ValueError):
            kdf.derive(PRE, CR, SR, -1)


class TestMasterSecret:
    def test_is_48_bytes(self):
        assert len(kdf.master_secret(PRE, CR, SR)) == 48

    def test_empty_premaster_rejected(self):
        with pytest.raises(ValueError):
            kdf.master_secret(b"", CR, SR)

    def test_variable_premaster_accepted_for_dh(self):
        # DH shared secrets are not 48 bytes; the derivation accepts them.
        assert len(kdf.master_secret(bytes(128), CR, SR)) == 48

    @given(st.binary(min_size=48, max_size=48),
           st.binary(min_size=32, max_size=32))
    @settings(max_examples=25, deadline=None)
    def test_sensitive_to_inputs(self, pre, cr):
        base = kdf.master_secret(PRE, CR, SR)
        if pre != PRE:
            assert kdf.master_secret(pre, CR, SR) != base
        if cr != CR:
            assert kdf.master_secret(PRE, cr, SR) != base

    def test_client_random_comes_first(self):
        """Master-secret derivation orders randoms client-first."""
        master = kdf.master_secret(PRE, CR, SR)
        assert master == kdf.derive(PRE, CR, SR, 48)


class TestKeyBlock:
    def test_server_random_comes_first(self):
        master = kdf.master_secret(PRE, CR, SR)
        assert kdf.key_block(master, CR, SR, 32) == kdf.derive(
            master, SR, CR, 32)

    def test_supports_longest_suite(self):
        # AES256-SHA needs 2*(20+32+16) = 136 bytes
        master = kdf.master_secret(PRE, CR, SR)
        assert len(kdf.key_block(master, CR, SR, 136)) == 136


class TestFinishedHashes:
    def _contexts(self, transcript: bytes):
        m, s = MD5(), SHA1()
        m.update(transcript)
        s.update(transcript)
        return m, s

    def test_shapes(self):
        m, s = self._contexts(b"handshake-messages")
        md5_h, sha_h = kdf.finished_hashes(m, s, PRE, kdf.SENDER_CLIENT)
        assert len(md5_h) == 16 and len(sha_h) == 20

    def test_sender_label_differentiates(self):
        m1, s1 = self._contexts(b"msgs")
        m2, s2 = self._contexts(b"msgs")
        client = kdf.finished_hashes(m1, s1, PRE, kdf.SENDER_CLIENT)
        server = kdf.finished_hashes(m2, s2, PRE, kdf.SENDER_SERVER)
        assert client != server

    def test_transcript_differentiates(self):
        m1, s1 = self._contexts(b"msgs-a")
        m2, s2 = self._contexts(b"msgs-b")
        assert kdf.finished_hashes(m1, s1, PRE, kdf.SENDER_CLIENT) != \
            kdf.finished_hashes(m2, s2, PRE, kdf.SENDER_CLIENT)

    def test_master_differentiates(self):
        m1, s1 = self._contexts(b"msgs")
        m2, s2 = self._contexts(b"msgs")
        assert kdf.finished_hashes(m1, s1, bytes(48), kdf.SENDER_CLIENT) != \
            kdf.finished_hashes(m2, s2, PRE, kdf.SENDER_CLIENT)

    def test_cert_verify_is_unlabelled_finished(self):
        m1, s1 = self._contexts(b"msgs")
        m2, s2 = self._contexts(b"msgs")
        assert kdf.cert_verify_hashes(m1, s1, PRE) == \
            kdf.finished_hashes(m2, s2, PRE, b"")

    def test_charges_hash_work(self, isolated_profiler):
        m, s = self._contexts(b"x" * 512)
        kdf.finished_hashes(m, s, PRE, kdf.SENDER_SERVER)
        names = set(isolated_profiler.functions)
        assert "MD5_Update" in names and "SHA1_Update" in names
