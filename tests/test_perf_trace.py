"""Synthetic trace expansion and profile merging."""

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.perf import Profiler, mix
from repro.perf.isa import ALL_MNEMONICS, InstrMix
from repro.perf.trace import (
    merge_profilers, profile_trace, synthesize_trace, trace_to_text,
)


class TestSynthesizeTrace:
    def test_composition_matches_mix(self):
        m = mix(movl=50, xorl=30, mull=20)
        counts = Counter(synthesize_trace(m))
        assert counts == {"movl": 50, "xorl": 30, "mull": 20}

    def test_length_override(self):
        m = mix(movl=3, xorl=1)
        trace = list(synthesize_trace(m, length=400))
        counts = Counter(trace)
        assert len(trace) == 400
        assert counts["movl"] == pytest.approx(300, abs=2)

    def test_interleaving_not_blocked(self):
        """Proportional scheduling interleaves rather than emitting runs."""
        m = mix(movl=100, xorl=100)
        trace = list(synthesize_trace(m))
        longest_run = 1
        run = 1
        for a, b in zip(trace, trace[1:]):
            run = run + 1 if a == b else 1
            longest_run = max(longest_run, run)
        assert longest_run <= 2

    def test_deterministic(self):
        m = mix(movl=10, addl=7, roll=3)
        assert list(synthesize_trace(m)) == list(synthesize_trace(m))

    def test_empty_mix(self):
        assert list(synthesize_trace(InstrMix.empty())) == []

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            list(synthesize_trace(mix(movl=1), length=-1))

    @given(st.dictionaries(st.sampled_from(ALL_MNEMONICS[:8]),
                           st.integers(1, 60), min_size=1, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_counts_within_one_of_target(self, counts):
        m = InstrMix({k: float(v) for k, v in counts.items()})
        emitted = Counter(synthesize_trace(m))
        for name, target in counts.items():
            assert abs(emitted[name] - target) <= 1, name

    def test_text_rendering(self):
        text = trace_to_text(synthesize_trace(mix(movl=5, xorl=3)), width=4)
        lines = text.strip().splitlines()
        assert len(lines) == 2
        assert "movl" in lines[0]

    def test_profile_trace_from_real_kernel(self):
        from repro import perf
        from repro.crypto.md5 import MD5
        p = Profiler()
        with perf.activate(p):
            MD5(bytes(640)).digest()
        trace = profile_trace(p, length=200)
        assert len(trace) == 200
        counts = Counter(trace)
        assert counts["movl"] > counts.get("mull", 0)


class TestMergeProfilers:
    def _profile(self, cycles_fn="f", region="r", n=10):
        p = Profiler()
        with p.region(region):
            p.charge(mix(movl=n), function=cycles_fn)
        return p

    def test_totals_add(self):
        a, b = self._profile(n=10), self._profile(n=30)
        merged = merge_profilers(Profiler(), a, b)
        assert merged.total_cycles() == pytest.approx(
            a.total_cycles() + b.total_cycles())
        assert merged.total_instructions() == 40

    def test_functions_and_modules_merge(self):
        a = self._profile(cycles_fn="alpha")
        b = self._profile(cycles_fn="beta")
        merged = merge_profilers(Profiler(), a, b)
        assert set(merged.functions) == {"alpha", "beta"}
        assert merged.functions["alpha"].calls == 1

    def test_region_trees_merge_by_path(self):
        a = self._profile(region="handshake")
        b = self._profile(region="handshake")
        c = self._profile(region="bulk")
        merged = merge_profilers(Profiler(), a, b, c)
        assert merged.region_cycles("handshake") == pytest.approx(
            a.region_cycles("handshake") * 2)
        assert merged.region_cycles("bulk") > 0
        assert merged.root.inclusive_cycles() == pytest.approx(
            merged.total_cycles())

    def test_cpu_mismatch_rejected(self):
        from repro.perf import WIDE_CORE
        with pytest.raises(ValueError):
            merge_profilers(Profiler(), Profiler(cpu=WIDE_CORE))

    def test_merge_into_nonempty_target(self):
        target = self._profile(n=5)
        merge_profilers(target, self._profile(n=5))
        assert target.total_instructions() == 10
