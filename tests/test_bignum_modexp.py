"""Unit + property tests for sliding-window modular exponentiation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bignum import (
    BigNum, MontgomeryContext, mod_exp, window_bits_for_exponent_size,
)

odd_modulus = st.integers(3, 2**192).map(lambda x: x | 1)


class TestWindowSizes:
    def test_openssl_thresholds(self):
        assert window_bits_for_exponent_size(1024) == 6
        assert window_bits_for_exponent_size(512) == 5
        assert window_bits_for_exponent_size(160) == 4
        assert window_bits_for_exponent_size(64) == 3
        assert window_bits_for_exponent_size(17) == 1

    def test_monotone_nonincreasing_downward(self):
        sizes = [window_bits_for_exponent_size(b) for b in
                 (2048, 1024, 672, 671, 240, 239, 80, 79, 24, 23, 1)]
        assert sizes == sorted(sizes, reverse=True)


class TestModExp:
    @given(odd_modulus, st.integers(0, 2**192), st.integers(0, 2**64))
    @settings(max_examples=40, deadline=None)
    def test_matches_python_pow(self, m, base, exp):
        result = mod_exp(BigNum.from_int(base % m), BigNum.from_int(exp),
                         BigNum.from_int(m))
        assert result.to_int() == pow(base % m, exp, m)

    def test_exponent_zero(self):
        m = BigNum.from_int(101)
        assert mod_exp(BigNum.from_int(7), BigNum.zero(), m).to_int() == 1

    def test_exponent_one(self):
        m = BigNum.from_int(101)
        assert mod_exp(BigNum.from_int(7), BigNum.one(), m).to_int() == 7

    def test_base_zero(self):
        m = BigNum.from_int(101)
        assert mod_exp(BigNum.zero(), BigNum.from_int(17), m).to_int() == 0

    def test_base_one(self):
        m = BigNum.from_int(101)
        assert mod_exp(BigNum.one(), BigNum.from_int(9999), m).to_int() == 1

    def test_fermat_little_theorem(self):
        p = 0xFFFFFFFFFFFFFFC5  # a 64-bit prime
        a = 123456789
        assert mod_exp(BigNum.from_int(a), BigNum.from_int(p - 1),
                       BigNum.from_int(p)).to_int() == 1

    def test_large_dense_exponent(self):
        # All-ones exponent exercises maximal window usage.
        m = (1 << 192) + 133
        e = (1 << 160) - 1
        assert mod_exp(BigNum.from_int(3), BigNum.from_int(e),
                       BigNum.from_int(m)).to_int() == pow(3, e, m)

    def test_sparse_exponent(self):
        # Single high bit: all squarings, one table entry.
        m = (1 << 128) + 1
        e = 1 << 127
        assert mod_exp(BigNum.from_int(5), BigNum.from_int(e),
                       BigNum.from_int(m)).to_int() == pow(5, e, m)

    def test_even_modulus_rejected(self):
        with pytest.raises(ValueError):
            mod_exp(BigNum.from_int(2), BigNum.from_int(3),
                    BigNum.from_int(100))

    def test_precomputed_context_reuse(self):
        m = BigNum.from_int((1 << 160) + 7)
        ctx = MontgomeryContext(m)
        for base in (2, 3, 5):
            got = mod_exp(BigNum.from_int(base), BigNum.from_int(65537), m,
                          ctx)
            assert got.to_int() == pow(base, 65537, m.to_int())

    def test_mismatched_context_rejected(self):
        m1 = BigNum.from_int((1 << 96) + 3)
        m2 = BigNum.from_int((1 << 96) + 61)
        ctx = MontgomeryContext(m1)
        with pytest.raises(ValueError, match="does not match"):
            mod_exp(BigNum.from_int(2), BigNum.from_int(3), m2, ctx)

    def test_work_scales_with_exponent_bits(self, isolated_profiler):
        from repro import perf
        m = BigNum.from_int((1 << 256) + 297)
        p1 = perf.Profiler()
        with perf.activate(p1):
            mod_exp(BigNum.from_int(7), BigNum.from_int((1 << 64) - 1), m)
        p2 = perf.Profiler()
        with perf.activate(p2):
            mod_exp(BigNum.from_int(7), BigNum.from_int((1 << 128) - 1), m)
        # Doubling exponent bits should roughly double the multiply work.
        ratio = p2.total_cycles() / p1.total_cycles()
        assert 1.5 < ratio < 3.0
