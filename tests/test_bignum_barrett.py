"""Barrett reduction: correctness, even-modulus support, cost comparison."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import perf
from repro.bignum import BigNum, mod_exp
from repro.bignum.barrett import BarrettContext, mod_exp_barrett

modulus_any = st.integers(2**64, 2**256)  # odd or even


class TestBarrettReduce:
    @given(modulus_any, st.integers(0, 2**256), st.integers(0, 2**256))
    @settings(max_examples=40, deadline=None)
    def test_mod_mul_matches(self, m, a, b):
        ctx = BarrettContext(BigNum.from_int(m))
        a, b = a % m, b % m
        got = ctx.mod_mul(BigNum.from_int(a), BigNum.from_int(b))
        assert got.to_int() == (a * b) % m

    @given(modulus_any)
    @settings(max_examples=25, deadline=None)
    def test_reduce_near_m_squared(self, m):
        """The x < m^2 precondition boundary."""
        ctx = BarrettContext(BigNum.from_int(m))
        for x in (m * m - 1, m * m - m, m, m - 1, 0):
            assert ctx.reduce(BigNum.from_int(x)).to_int() == x % m

    def test_already_reduced_fast_path(self):
        ctx = BarrettContext(BigNum.from_int(10**40))
        small = BigNum.from_int(12345)
        assert ctx.reduce(small).to_int() == 12345

    def test_zero_modulus_rejected(self):
        with pytest.raises(ValueError):
            BarrettContext(BigNum.zero())


class TestBarrettModExp:
    @given(modulus_any, st.integers(0, 2**256), st.integers(0, 2**48))
    @settings(max_examples=30, deadline=None)
    def test_matches_pow(self, m, base, e):
        got = mod_exp_barrett(BigNum.from_int(base % m),
                              BigNum.from_int(e), BigNum.from_int(m))
        assert got.to_int() == pow(base % m, e, m)

    def test_even_modulus_works(self):
        """Barrett's advantage: no odd-modulus restriction."""
        m = 1 << 200
        got = mod_exp_barrett(BigNum.from_int(3), BigNum.from_int(1000),
                              BigNum.from_int(m))
        assert got.to_int() == pow(3, 1000, m)
        with pytest.raises(ValueError):
            mod_exp(BigNum.from_int(3), BigNum.from_int(1000),
                    BigNum.from_int(m))

    def test_exponent_zero_and_one(self):
        m = BigNum.from_int(97 * 89)
        assert mod_exp_barrett(BigNum.from_int(5), BigNum.zero(),
                               m).to_int() == 1
        assert mod_exp_barrett(BigNum.from_int(5), BigNum.one(),
                               m).to_int() == 5

    def test_agrees_with_montgomery(self):
        m = BigNum.from_int((1 << 256) + 297)  # odd: both paths legal
        base, e = BigNum.from_int(123456789), BigNum.from_int((1 << 64) - 3)
        assert mod_exp_barrett(base, e, m) == mod_exp(base, e, m)

    def test_montgomery_wins_on_cost(self):
        """The reason the RSA hot path is Montgomery: ~3 products per
        modmul against Montgomery's interleaved ~2."""
        m = BigNum.from_int((1 << 512) + 75)
        e = BigNum.from_int((1 << 128) - 1)
        pb, pm = perf.Profiler(), perf.Profiler()
        with perf.activate(pb):
            mod_exp_barrett(BigNum.from_int(7), e, m)
        with perf.activate(pm):
            mod_exp(BigNum.from_int(7), e, m)
        ratio = pb.total_cycles() / pm.total_cycles()
        assert 1.2 < ratio < 2.0

    def test_charged_under_recp_names(self, isolated_profiler):
        m = BigNum.from_int((1 << 128) + 1)
        mod_exp_barrett(BigNum.from_int(3), BigNum.from_int(1 << 40), m)
        names = set(isolated_profiler.functions)
        assert "BN_mod_mul_reciprocal" in names
        assert "BN_mod_exp_recp" in names
