"""Sharded server farm: N=1 bit-exactness, topologies, balancing policies.

The farm's core invariant (DESIGN.md): a one-worker farm is *bit-identical*
to ``WebServerSimulator.run(..., concurrency=k)`` -- cycle totals, full
charge stream, transcript bytes.  The remaining tests pin the sharding
semantics: cross-worker resumption works under the shared cache topology
and misses under the partitioned one, session-affinity routing recovers
the partitioned misses, and batch-RSA continuations stay worker-local.
"""

from __future__ import annotations

import pytest

from repro.crypto.batch_rsa import BatchRsaError, generate_batch_keys
from repro.crypto.rand import PseudoRandom
from repro.webserver import (
    PARTITIONED, POLICIES, SHARED,
    RequestWorkload, RoundRobinPolicy, ServerFarm, WebServerSimulator,
    farm_requests_per_second,
)

from tests.test_fastpath_equivalence import snapshot


@pytest.fixture(scope="module")
def batch_keys():
    return generate_batch_keys(512, 4, rng=PseudoRandom(b"farm-batch"))


def workload(resumption_rate=0.5, size=2048):
    """Fresh builder per run: the workload RNG is stateful across calls."""
    return RequestWorkload.fixed(size, resumption_rate=resumption_rate)


# ---------------------------------------------------------------------------
# N=1 bit-exactness
# ---------------------------------------------------------------------------

class TestSingleWorkerEquivalence:
    def test_bit_identical_to_simulator(self, identity512):
        key, cert = identity512
        # Warmup: the first run through a key lazily builds and caches its
        # Montgomery contexts, charging setup cycles later runs skip.
        WebServerSimulator(key=key, cert=cert).run(workload(), 2,
                                                   concurrency=2)

        base_sim = WebServerSimulator(key=key, cert=cert)
        base = base_sim.run(workload(), 6, concurrency=3)

        farm = ServerFarm(1, key=key, cert=cert)
        fr = farm.run(workload(), 6, concurrency_per_worker=3)
        worker = fr.results[0]

        assert snapshot(worker.profiler) == snapshot(base.profiler)
        assert worker.wire_bytes == base.wire_bytes
        assert worker.requests_completed == base.requests_completed
        assert worker.resumed_handshakes == base.resumed_handshakes
        assert worker.failures == base.failures
        assert worker.bytes_served == base.bytes_served
        assert fr.cross_worker_resumptions == 0

    def test_bit_identical_with_batching(self, batch_keys):
        base_sim = WebServerSimulator(key_set=batch_keys, batch_size=3)
        base_sim.run(workload(0.0), 2, concurrency=2)  # warmup

        base_sim = WebServerSimulator(key_set=batch_keys, batch_size=3)
        base = base_sim.run(workload(0.0), 6, concurrency=3)

        farm = ServerFarm(1, key_set=batch_keys, batch_size=3)
        fr = farm.run(workload(0.0), 6, concurrency_per_worker=3)
        worker = fr.results[0]

        assert snapshot(worker.profiler) == snapshot(base.profiler)
        assert worker.wire_bytes == base.wire_bytes
        assert worker.batched_ops == base.batched_ops
        assert worker.batches == base.batches
        assert base.batched_ops > 0

    def test_farm_aggregates_match_single_worker(self, identity512):
        key, cert = identity512
        fr = ServerFarm(1, key=key, cert=cert).run(workload(), 4)
        assert fr.requests_completed == fr.results[0].requests_completed
        assert fr.wire_bytes == fr.results[0].wire_bytes
        assert fr.total_cycles() == fr.results[0].profiler.total_cycles()
        assert fr.makespan_seconds() == fr.results[0].profiler.seconds()


# ---------------------------------------------------------------------------
# Cache topologies and cross-worker resumption
# ---------------------------------------------------------------------------

class TestTopologies:
    def run_farm(self, identity, topology, policy="round-robin"):
        key, cert = identity
        farm = ServerFarm(2, topology=topology, policy=policy,
                          key=key, cert=cert)
        result = farm.run(workload(resumption_rate=1.0), 4,
                          concurrency_per_worker=1)
        return farm, result

    def test_shared_cache_resumes_across_workers(self, identity512):
        _, result = self.run_farm(identity512, SHARED)
        # txn2 offers the session minted on worker 1 but lands on worker
        # 0: with one shared cache it still resumes.
        assert result.cross_worker_resumptions >= 1
        assert result.resumed_handshakes >= 2
        assert result.failures == 0
        assert len(result.shard_stats) == 1
        assert result.shard_stats[0]["workers"] == [0, 1]
        assert result.shard_stats[0]["hits"] == result.resumed_handshakes

    def test_partitioned_cache_misses_across_workers(self, identity512):
        _, result = self.run_farm(identity512, PARTITIONED)
        # The same cross-worker presentation now misses worker 0's private
        # shard and pays a full handshake.
        assert result.cross_worker_resumptions == 0
        assert result.failures == 0
        assert len(result.shard_stats) == 2
        assert sum(s["misses"] for s in result.shard_stats) >= 1

    def test_affinity_recovers_partitioned_misses(self, identity512):
        _, round_robin = self.run_farm(identity512, PARTITIONED)
        _, affinity = self.run_farm(identity512, PARTITIONED,
                                    policy="session-affinity")
        # Sticky routing sends resuming clients back to the shard that
        # minted their session, so no resumption is lost to partitioning.
        assert (affinity.resumed_handshakes
                > round_robin.resumed_handshakes)
        assert affinity.cross_worker_resumptions == 0
        assert affinity.failures == 0

    def test_partitioned_shards_are_private(self, identity512):
        key, cert = identity512
        farm = ServerFarm(2, topology=PARTITIONED, key=key, cert=cert)
        farm.run(workload(resumption_rate=0.0), 4,
                 concurrency_per_worker=1)
        caches = farm.shard_caches()
        assert len(caches) == 2
        assert caches[0] is not caches[1]
        ids = [set(c._entries) for c in caches]
        assert not (ids[0] & ids[1])

    def test_shared_topology_uses_one_cache(self, identity512):
        key, cert = identity512
        farm = ServerFarm(3, topology=SHARED, key=key, cert=cert)
        caches = farm.shard_caches()
        assert len(caches) == 1
        assert all(sim._session_cache is caches[0]
                   for sim in farm._sims)


# ---------------------------------------------------------------------------
# Balancing policies
# ---------------------------------------------------------------------------

class TestPolicies:
    def test_registry(self):
        assert set(POLICIES) == {"round-robin", "least-connections",
                                 "session-affinity"}

    def test_round_robin_spreads_work(self, identity512):
        key, cert = identity512
        farm = ServerFarm(2, key=key, cert=cert)
        result = farm.run(workload(0.0), 6, concurrency_per_worker=2)
        assert [r.requests_completed for r in result.results] == [3, 3]

    def test_least_connections_spreads_work(self, identity512):
        key, cert = identity512
        farm = ServerFarm(2, policy="least-connections", key=key, cert=cert)
        result = farm.run(workload(0.0), 6, concurrency_per_worker=2)
        assert result.requests_completed == 6
        assert all(r.requests_completed > 0 for r in result.results)

    def test_policy_instance_accepted(self, identity512):
        key, cert = identity512
        farm = ServerFarm(2, policy=RoundRobinPolicy(), key=key, cert=cert)
        result = farm.run(workload(0.0), 2, concurrency_per_worker=1)
        assert result.policy == "round-robin"
        assert result.requests_completed == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ServerFarm(0)
        with pytest.raises(ValueError):
            ServerFarm(1, topology="replicated")
        with pytest.raises(ValueError):
            ServerFarm(1, policy="random")


class TestAffinityUnderSaturation:
    """SessionAffinityPolicy's documented saturation fallback: a resuming
    client whose sticky worker has no free slot is *held at the head of
    the accept queue* -- never rerouted to another shard (which would
    trade a guaranteed future hit for a guaranteed miss)."""

    def make_farm(self, identity512):
        from repro.webserver.farm import _WorkerState
        key, cert = identity512
        farm = ServerFarm(2, topology=PARTITIONED,
                          policy="session-affinity", key=key, cert=cert)
        farm._states = [_WorkerState(i, sim)
                        for i, sim in enumerate(farm._sims)]
        farm._concurrency = 1
        return farm

    def minted_session(self, farm, worker):
        from repro.ssl import DES_CBC3_SHA
        from repro.ssl.session import SslSession
        session = SslSession(session_id=bytes([worker + 1]) * 32,
                             cipher_suite_id=DES_CBC3_SHA.suite_id,
                             master_secret=b"m" * 48)
        farm._pool.current_worker = worker
        farm._pool.store(None, session)
        return session

    def test_holds_resuming_client_for_saturated_sticky_worker(
            self, identity512):
        from repro.webserver.workload import Request
        farm = self.make_farm(identity512)
        self.minted_session(farm, worker=0)
        group = [Request(path="/r", size_bytes=1024, resumable=True)]
        # Worker 0 (the session's minter) is saturated: the policy holds
        # the connection rather than breaking affinity, even though
        # worker 1 has a free slot.
        farm._states[0].sched.add(object(), 0)
        assert farm.free_slots(1)
        assert farm.policy.select(farm, group) is None
        # The slot frees up next round; the same connection now routes home.
        farm._states[0].sched.clear()
        assert farm.policy.select(farm, group) == 0

    def test_fresh_clients_still_flow_around_saturation(self, identity512):
        from repro.webserver.workload import Request
        farm = self.make_farm(identity512)
        self.minted_session(farm, worker=0)
        farm._states[0].sched.add(object(), 0)
        fresh = [Request(path="/f", size_bytes=1024, resumable=False)]
        # Non-resuming connections fall back to round-robin and take the
        # free worker -- saturation of a sticky target never head-blocks
        # the fresh traffic behind a *different* accept-queue entry.
        assert farm.policy.select(farm, fresh) == 1

    def test_saturated_run_completes_without_breaking_affinity(
            self, identity512):
        key, cert = identity512
        farm = ServerFarm(2, topology=PARTITIONED,
                          policy="session-affinity", key=key, cert=cert)
        # concurrency 1 forces repeated sticky-target saturation: every
        # resuming client must wait for its home worker's single slot.
        result = farm.run(workload(1.0), 8, concurrency_per_worker=1)
        assert result.failures == 0
        assert result.requests_completed == 8
        # Affinity was never broken: no resumption was served off-shard.
        assert result.cross_worker_resumptions == 0


# ---------------------------------------------------------------------------
# Batch RSA sharding
# ---------------------------------------------------------------------------

class TestFarmBatching:
    def test_continuations_stay_worker_local(self, batch_keys):
        farm = ServerFarm(2, key_set=batch_keys, batch_size=2)
        result = farm.run(workload(0.0), 8, concurrency_per_worker=2)
        assert result.failures == 0
        assert result.requests_completed == 8
        # Every worker ran its own queue: each one's batched decrypts
        # equal its own completed full handshakes -- nothing crossed over.
        for r in result.results:
            assert r.batched_ops == r.requests_completed
        assert result.batched_ops == 8
        assert sum(size * count
                   for size, count in result.batch_histogram().items()) == 8

    def test_keyset_partition_disjoint(self, batch_keys):
        subsets = batch_keys.partition(2)
        assert [len(s) for s in subsets] == [2, 2]
        seen = set()
        for subset in subsets:
            for member in subset.members:
                assert id(member) not in seen
                seen.add(id(member))
        assert len(seen) == len(batch_keys)

    def test_keyset_partition_validation(self, batch_keys):
        with pytest.raises(BatchRsaError):
            batch_keys.partition(0)
        with pytest.raises(BatchRsaError):
            batch_keys.partition(5)  # only 4 members

    def test_more_workers_than_member_keys_rejected(self, batch_keys):
        with pytest.raises(BatchRsaError):
            ServerFarm(5, key_set=batch_keys)


# ---------------------------------------------------------------------------
# Farm-level metrics
# ---------------------------------------------------------------------------

class TestFarmMetrics:
    def test_capacity_and_merged_profile(self, identity512):
        key, cert = identity512
        fr = ServerFarm(2, key=key, cert=cert).run(
            workload(), 6, concurrency_per_worker=2)
        assert fr.capacity_rps() > 0
        assert fr.analytic_capacity_rps() > 0
        merged = fr.merged_profiler()
        assert merged.total_cycles() == pytest.approx(fr.total_cycles())
        shares = fr.module_shares()
        assert shares
        assert sum(shares.values()) == pytest.approx(1.0)
        stats = fr.worker_stats()
        assert [w.worker for w in stats] == [0, 1]
        assert all(w.cycles > 0 for w in stats)

    def test_farm_requests_per_second(self):
        # Two workers at 1e9 cycles for 10 requests each on a 1e9 Hz CPU
        # would each serve 10 rps.
        from repro.perf import CpuModel
        cpu = CpuModel(name="unit", frequency_hz=1e9)
        assert farm_requests_per_second(
            [1e9, 1e9], [10, 10], cpu) == pytest.approx(20.0)
        assert farm_requests_per_second([1e9, 0.0], [10, 0],
                                        cpu) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            farm_requests_per_second([1e9], [10, 10], cpu)
        with pytest.raises(ValueError):
            farm_requests_per_second([], [], cpu)
        with pytest.raises(ValueError):
            farm_requests_per_second([-1.0], [1], cpu)
