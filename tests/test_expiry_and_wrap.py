"""Regression tests: session expiry, sequence-number wrap, cache stats.

Three bugs fixed together with the farm work:

* session lifetimes were minted but never consulted -- ``SessionCache.get``
  now takes the caller's virtual clock and drops expired entries;
* the record layer's 64-bit sequence numbers silently wrapped -- reuse of
  a MAC sequence number is a keystream/MAC catastrophe, so hitting the cap
  is now a fatal :class:`SequenceOverflow` on both the seal and open paths
  (testable via an injectable lowered cap);
* cache churn was invisible -- every early-removal path now feeds one
  ``evictions`` counter surfaced through :meth:`SessionCache.stats`.
"""

from __future__ import annotations

import pytest

from repro.crypto.rand import PseudoRandom
from repro.ssl import kdf
from repro.ssl.ciphersuites import DEFAULT_SUITE, RC4_MD5
from repro.ssl.client import SslClient
from repro.ssl.errors import AlertError, SequenceOverflow, SslError
from repro.ssl.loopback import pump
from repro.ssl.record import ConnectionState, ContentType, KeyMaterial
from repro.ssl.server import SslServer
from repro.ssl.session import SessionCache, SslSession
from repro.webserver import RequestWorkload, WebServerSimulator
from repro import perf


def secret(tag: bytes) -> bytes:
    return (tag * 48)[:48]


def make_session(sid: bytes, created_at: float = 0.0,
                 lifetime: float = 300.0) -> SslSession:
    return SslSession(session_id=sid, cipher_suite_id=RC4_MD5.suite_id,
                      master_secret=secret(b"m"), created_at=created_at,
                      lifetime=lifetime)


# ---------------------------------------------------------------------------
# Session expiry through the server
# ---------------------------------------------------------------------------

class TestServerSessionExpiry:
    def handshake(self, identity, cache, clock_value, session=None,
                  tag=b"x"):
        """One pumped handshake against a server whose clock is frozen."""
        key, cert = identity
        server = SslServer(key, cert, suites=(DEFAULT_SUITE,),
                           session_cache=cache,
                           rng=PseudoRandom(b"expiry-s" + tag),
                           clock=lambda: clock_value,
                           session_lifetime=300.0)
        client = SslClient(suites=(DEFAULT_SUITE,), session=session,
                           rng=PseudoRandom(b"expiry-c" + tag))
        client.start_handshake()
        pump(client, server, perf.Profiler(), perf.Profiler())
        assert server.handshake_complete and client.handshake_complete
        return server, client

    def test_session_expires_after_lifetime(self, identity512):
        cache = SessionCache()
        # Mint at t=0: a 300 s lifetime session enters the cache.
        _, client = self.handshake(identity512, cache, 0.0, tag=b"0")
        session = client.session
        assert session is not None
        assert cache.get(session.session_id, now=0.0) is not None

        # t=100: within the lifetime -- the abbreviated handshake works.
        server, _ = self.handshake(identity512, cache, 100.0,
                                   session=session, tag=b"1")
        assert server.resumed

        # t=450: the workload outlived the 300 s lifetime.  Pre-fix the
        # stale session would still resume (lifetime was never consulted);
        # now the lookup drops it and a full handshake runs.
        evictions_before = cache.evictions
        server, _ = self.handshake(identity512, cache, 450.0,
                                   session=session, tag=b"2")
        assert not server.resumed
        assert cache.evictions == evictions_before + 1

    def test_no_clock_means_no_expiry(self, identity512):
        """Without a modelled clock the old deterministic behavior holds."""
        key, cert = identity512
        cache = SessionCache()
        cache.put(make_session(b"\x01" * 32, created_at=0.0, lifetime=1.0))
        server = SslServer(key, cert, suites=(DEFAULT_SUITE,),
                           session_cache=cache,
                           rng=PseudoRandom(b"noclock"))
        assert server._clock is None
        # The cache keeps even an ancient session when now is omitted.
        assert cache.get(b"\x01" * 32) is not None

    def test_simulator_expiry_end_to_end(self, identity512):
        """A tiny virtual lifetime kills resumption inside the simulator."""
        key, cert = identity512

        def run(lifetime):
            sim = WebServerSimulator(key=key, cert=cert,
                                     session_lifetime=lifetime)
            wl = RequestWorkload.fixed(1024, resumption_rate=1.0)
            return sim.run(wl, 4)

        fresh = run(300.0)
        assert fresh.resumed_handshakes >= 1
        # Sub-cycle lifetime: every minted session is already expired by
        # the time the next connection's lookup reads the virtual clock.
        expired = run(1e-9)
        assert expired.resumed_handshakes == 0
        assert expired.failures == 0  # expired sessions fall back cleanly


# ---------------------------------------------------------------------------
# Sequence-number wrap
# ---------------------------------------------------------------------------

def make_state_pair(seq_cap):
    suite = RC4_MD5
    need = suite.key_material_length() // 2
    block = kdf.derive(bytes(48), b"wrap-test".ljust(32, b"\0"), bytes(32),
                       suite.key_material_length())
    material = KeyMaterial(
        mac_secret=block[:suite.mac_key_len],
        key=block[suite.mac_key_len:suite.mac_key_len + suite.key_len],
        iv=block[need - suite.iv_len:need],
    )
    tx = ConnectionState(suite, material, seq_cap=seq_cap)
    rx = ConnectionState(suite, KeyMaterial(material.mac_secret,
                                            material.key, material.iv),
                         seq_cap=seq_cap)
    return tx, rx


class TestSequenceWrap:
    def test_seal_raises_at_cap(self):
        tx, _ = make_state_pair(seq_cap=3)
        for _ in range(3):
            tx.seal(ContentType.APPLICATION_DATA, b"data")
        with pytest.raises(SequenceOverflow):
            tx.seal(ContentType.APPLICATION_DATA, b"data")
        # The counter must not advance past the cap: the state is dead.
        assert tx.seq_num == 3

    def test_open_raises_at_cap(self):
        tx, rx = make_state_pair(seq_cap=3)
        bodies = [tx.seal(ContentType.APPLICATION_DATA, b"data")
                  for _ in range(3)]
        for body in bodies:
            assert rx.open(ContentType.APPLICATION_DATA, body) == b"data"
        with pytest.raises(SequenceOverflow):
            rx.open(ContentType.APPLICATION_DATA, bodies[0])
        assert rx.seq_num == 3

    def test_overflow_is_fatal_not_alertable(self):
        # Sending an alert would itself seal a record with the exhausted
        # counter, so the overflow must bypass the alert machinery.
        assert issubclass(SequenceOverflow, SslError)
        assert not issubclass(SequenceOverflow, AlertError)

    def test_default_cap_is_2_64(self):
        tx, _ = make_state_pair(seq_cap=ConnectionState.SEQ_NUM_CAP)
        assert tx.seq_cap == 1 << 64
        tx.seq_num = (1 << 64) - 1
        tx.seal(ContentType.APPLICATION_DATA, b"last one")
        with pytest.raises(SequenceOverflow):
            tx.seal(ContentType.APPLICATION_DATA, b"wrapped")

    def test_cap_validation(self):
        with pytest.raises(ValueError):
            make_state_pair(seq_cap=0)
        with pytest.raises(ValueError):
            make_state_pair(seq_cap=(1 << 64) + 1)


# ---------------------------------------------------------------------------
# Unified cache statistics
# ---------------------------------------------------------------------------

class TestCacheStats:
    def test_capacity_eviction_counted(self):
        cache = SessionCache(capacity=2)
        for i in range(1, 4):
            cache.put(make_session(bytes([i]) * 32))
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.get(b"\x01" * 32) is None  # LRU victim
        assert cache.misses == 1

    def test_expired_lookup_counted_as_miss_and_eviction(self):
        cache = SessionCache()
        cache.put(make_session(b"\x05" * 32, created_at=0.0, lifetime=10.0))
        assert cache.get(b"\x05" * 32, now=5.0) is not None
        assert cache.hits == 1
        assert cache.get(b"\x05" * 32, now=20.0) is None
        assert cache.misses == 1
        assert cache.evictions == 1
        assert len(cache) == 0

    def test_purge_expired_counted(self):
        cache = SessionCache()
        cache.put(make_session(b"\x06" * 32, created_at=0.0, lifetime=10.0))
        cache.put(make_session(b"\x07" * 32, created_at=0.0, lifetime=99.0))
        assert cache.purge_expired(now=50.0) == 1
        assert cache.evictions == 1
        assert len(cache) == 1

    def test_stats_snapshot(self):
        cache = SessionCache(capacity=8)
        cache.put(make_session(b"\x08" * 32))
        cache.get(b"\x08" * 32)
        cache.get(b"\x09" * 32)
        assert cache.stats() == {"hits": 1, "misses": 1, "evictions": 0,
                                 "replacements": 0, "size": 1,
                                 "capacity": 8}
