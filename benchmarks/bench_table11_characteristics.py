"""Table 11: architectural characteristics of the crypto operations.

CPI, path length (instructions per byte) and throughput for AES, DES,
3DES, RC4, RSA, MD5 and SHA-1.  Note (EXPERIMENTS.md): the paper's own
Table 11 is internally inconsistent by ~1.3x between CPI x path-length and
the reported MB/s; we match CPI and path length, so our throughputs sit
~25-40% above the paper's MB/s column with the same ordering.
"""

from repro.crypto.bench import ALGORITHMS, characteristics
from repro.perf import format_table

PAPER = {
    "aes": (0.66, 50, 51.19), "des": (0.67, 69, 36.95),
    "3des": (0.66, 194, 13.32), "rc4": (0.57, 14, 211.34),
    "rsa": (0.77, 61_457, 0.036), "md5": (0.72, 12, 197.86),
    "sha1": (0.52, 24, 135.30),
}


def test_table11_characteristics(benchmark, emit):
    table = benchmark.pedantic(characteristics,
                               kwargs={"nbytes": 8192, "rsa_bits": 1024},
                               rounds=1, iterations=1)

    rows = []
    for name in ALGORITHMS:
        c, p = table[name], PAPER[name]
        rows.append((name.upper(), f"{c.cpi:.2f}", f"{p[0]:.2f}",
                     f"{c.path_length:.1f}", f"{p[1]:g}",
                     f"{c.throughput_mbps:.2f}", f"{p[2]:g}"))
    emit(format_table(
        ["op", "CPI", "CPI (paper)", "instr/byte", "instr/byte (paper)",
         "MB/s", "MB/s (paper)"], rows,
        title="Table 11: architectural characteristics"))

    for name in ALGORITHMS:
        assert abs(table[name].cpi - PAPER[name][0]) < 0.05, name
    t = {k: v.throughput_mbps for k, v in table.items()}
    assert t["rc4"] > t["md5"] > t["sha1"] > t["aes"] > t["des"] > \
        t["3des"] > t["rsa"]
    # RSA's path length dwarfs everything else by three orders of magnitude.
    assert table["rsa"].path_length > 100 * table["3des"].path_length
