"""Table 6: DES / 3DES block-operation execution-time breakdown.

Paper: DES -> IP 50 / substitution 286 / FP 46 cycles (74.7% substitution);
3DES -> 55 / 915 / 57 (89.1% substitution).  3DES runs 3x16 rounds between
a single IP/FP pair.
"""

from repro.crypto.bench import des_block_breakdown
from repro.crypto.des import DES, TripleDES
from repro.perf import Profiler, activate, format_table, percent

PAPER = {"des": (50, 286, 46), "3des": (55, 915, 57)}


def measure_block(variant):
    p = Profiler()
    with activate(p):
        if variant == "des":
            DES(bytes(8)).encrypt_block(bytes(8))
            return p.functions["DES_encrypt"].cycles
        TripleDES(bytes(24)).encrypt_block(bytes(8))
        return p.functions["DES_encrypt3"].cycles


def test_table06_des_breakdown(benchmark, emit):
    executed_des = benchmark(measure_block, "des")

    rows = []
    for variant in ("des", "3des"):
        phases = des_block_breakdown(variant)
        total = sum(c for _, c in phases)
        for (phase, cycles), paper in zip(phases, PAPER[variant]):
            rows.append((variant.upper(), phase, cycles,
                         percent(cycles / total), paper))
        rows.append((variant.upper(), "TOTAL", total, "100%",
                     sum(PAPER[variant])))
    emit(format_table(
        ["cipher", "phase", "measured (cycles)", "share",
         "paper (cycles)"],
        rows, title="Table 6: DES/3DES block-operation breakdown"))

    for variant in ("des", "3des"):
        phases = des_block_breakdown(variant)
        total = sum(c for _, c in phases)
        sub_share = phases[1][1] / total
        paper_share = PAPER[variant][1] / sum(PAPER[variant])
        assert abs(sub_share - paper_share) < 0.06, variant
        assert abs(total - sum(PAPER[variant])) / sum(PAPER[variant]) < 0.2
    # Model matches executed block.
    assert abs(executed_des - sum(c for _, c in des_block_breakdown("des"))
               ) / executed_des < 0.1
