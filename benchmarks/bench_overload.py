"""Capacity-vs-offered-load knee curves under hostile traffic, with and
without the overload policies.

The paper's cost anatomy says exactly *where* an overloaded SSL server
loses its capacity: handshake floods burn the Table 2 RSA decrypt
without ever completing, and every admitted connection drags the record
path at the negotiated suite's per-byte cost.  This benchmark offers the
same adversarial workload (25% handshake floods, bursty Pareto arrivals)
to a two-worker shared-cache farm at increasing offered rates and plots
the knee twice:

* **baseline** -- no admission control, no suite policy: every offered
  connection is accepted and served at 3DES/SHA;
* **policied** -- :class:`~repro.webserver.overload.
  ResumptionPreferredPolicy` bounds the accept queue (shedding exactly
  the never-completing floods first, since floods never offer a
  session) and :class:`~repro.webserver.overload.SuitePolicy` steers
  ServerHello toward RC4/MD5 under queue pressure, priced from the
  repo's own modeled kernels.

The load axis is *offered intensity* -- connections per scheduling
round, a workload-intrinsic figure (the arrival stream is identical for
both farms at each point, so the curves differ only by policy).  Modeled
virtual time never idles, so the **knee** is where the accept queue
first outgrows the bound the policied farm enforces: below it the
policies never engage and the two curves coincide *exactly*; past it
the policied farm must sustain *strictly higher* completed-handshake
throughput -- shedding work that was never going to finish, and
cheapening the work that will, buys back modeled capacity.  The sanity
block at the bottom enforces both halves, plus p99 modeled handshake
latency for both curves.

Run directly (or via ``make bench-overload``)::

    PYTHONPATH=src python benchmarks/bench_overload.py

Writes ``BENCH_overload.json`` at the repository root.  Modeled virtual
time only -- host wall-clock never enters the numbers, so the output is
deterministic.
"""

from __future__ import annotations

import json
import pathlib

from repro.crypto import rsa
from repro.perf.export import write_json
from repro.ssl.ciphersuites import DES_CBC3_SHA, RC4_MD5
from repro.ssl.loopback import make_server_identity
from repro.webserver import SHARED, ServerFarm
from repro.webserver.overload import (
    AdversarialWorkload, ResumptionPreferredPolicy, SuitePolicy,
    suite_cost_per_kb,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_overload.json"

NWORKERS = 2
CONCURRENCY = 2
NCONNS = 24
FILE_SIZE = 4096
KEY_BITS = 512
CLIENTS = 8
RESUMPTION_RATE = 0.4
FLOOD_RATE = 0.25
SEED = b"overload-bench"

#: Mean inter-arrival gap in scheduling rounds, high load rightward.
#: ``0.0`` is the everything-at-once burst -- deepest into overload.
MEAN_GAPS = (8.0, 4.0, 2.0, 1.0, 0.0)

MAX_QUEUE = 8
QUEUE_HIGH = 6


def _offered_intensity(mean_gap: float) -> float:
    """Connections per scheduling round: the workload-intrinsic load
    axis, identical for the baseline and policied farms at each point."""
    workload = AdversarialWorkload.fixed(
        FILE_SIZE, resumption_rate=RESUMPTION_RATE, seed=SEED,
        clients=CLIENTS, mean_gap_rounds=mean_gap, flood_rate=FLOOD_RATE)
    arrivals = [r.arrival_round for r in workload.requests(NCONNS)]
    return NCONNS / (max(arrivals) + 1)


def run_point(key, cert, mean_gap: float, *, policied: bool) -> dict:
    rsa.reset_error_tables()
    admission = ResumptionPreferredPolicy(MAX_QUEUE) if policied else None
    suite_policy = (SuitePolicy(primary=DES_CBC3_SHA, downgrade=RC4_MD5,
                                queue_high=QUEUE_HIGH)
                    if policied else None)
    farm = ServerFarm(NWORKERS, topology=SHARED, key=key, cert=cert,
                      use_crt=True, admission=admission,
                      suite_policy=suite_policy,
                      client_suites=(DES_CBC3_SHA, RC4_MD5))
    workload = AdversarialWorkload.fixed(
        FILE_SIZE, resumption_rate=RESUMPTION_RATE, seed=SEED,
        clients=CLIENTS, mean_gap_rounds=mean_gap, flood_rate=FLOOD_RATE)
    result = farm.run(workload, NCONNS,
                      concurrency_per_worker=CONCURRENCY)
    makespan = result.makespan_seconds()
    return {
        "mode": "policied" if policied else "baseline",
        "mean_gap_rounds": mean_gap,
        "offered_intensity_cpr": _offered_intensity(mean_gap),
        "offered_connections": result.offered_connections,
        "completed_handshakes": result.completed_handshakes,
        "throughput_hps": result.completed_handshakes / makespan,
        "requests_completed": result.requests_completed,
        "failures": result.failures,
        "makespan_s": makespan,
        "handshake_latency_p50_s": result.handshake_latency_percentile(50),
        "handshake_latency_p99_s": result.handshake_latency_percentile(99),
        "connections_shed": result.connections_shed,
        "handshakes_abandoned": result.handshakes_abandoned,
        "connections_downgraded": result.connections_downgraded,
        "resumed_handshakes": result.resumed_handshakes,
        "peak_queue_depth": result.peak_queue_depth,
        "queue_wait_rounds_total": result.queue_wait_rounds_total,
        "wire_bytes": result.wire_bytes,
    }


def main() -> dict:
    key, cert = make_server_identity(KEY_BITS, seed=SEED)

    points = []
    for mean_gap in MEAN_GAPS:
        pair = {}
        for policied in (False, True):
            point = run_point(key, cert, mean_gap, policied=policied)
            pair[point["mode"]] = point
            points.append(point)
            print(f"{point['mode']:8s} gap={mean_gap:4.1f}  "
                  f"load={point['offered_intensity_cpr']:6.2f} conns/round"
                  f"  tput={point['throughput_hps']:8.1f}/s  "
                  f"p99={point['handshake_latency_p99_s'] * 1e3:6.2f}ms  "
                  f"shed={point['connections_shed']:2d}  "
                  f"down={point['connections_downgraded']:2d}")
        if pair["baseline"]["failures"] or pair["policied"]["failures"]:
            raise SystemExit("a point failed transactions: "
                             + json.dumps(pair))

    baseline = [p for p in points if p["mode"] == "baseline"]
    policied = [p for p in points if p["mode"] == "policied"]

    # The knee: the highest offered intensity at which the accept queue
    # still fits the policied farm's bound -- the policies never engage,
    # so the two curves must coincide exactly.  Past it they diverge.
    def engaged(p: dict) -> bool:
        return bool(p["connections_shed"] or p["connections_downgraded"])

    idle = [(b, p) for b, p in zip(baseline, policied) if not engaged(p)]
    past_knee = [(b, p) for b, p in zip(baseline, policied) if engaged(p)]
    if not idle:
        raise SystemExit("policies engaged at every point -- the sweep "
                         "no longer shows the pre-knee regime")
    if not past_knee:
        raise SystemExit("sweep never pushed past the knee: the accept "
                         "queue never outgrew the policy bound")
    for b, p in idle:
        if b["throughput_hps"] != p["throughput_hps"]:
            raise SystemExit(
                f"pre-knee curves diverged at gap={b['mean_gap_rounds']} "
                f"with the policies idle: baseline "
                f"{b['throughput_hps']!r} vs policied "
                f"{p['throughput_hps']!r}")
    for b, p in past_knee:
        if not p["throughput_hps"] > b["throughput_hps"]:
            raise SystemExit(
                f"policies did not sustain throughput past the knee at "
                f"gap={b['mean_gap_rounds']}: baseline "
                f"{b['throughput_hps']:.1f}/s vs policied "
                f"{p['throughput_hps']:.1f}/s")
    knee = idle[-1][0]

    out = {
        "config": {
            "nworkers": NWORKERS,
            "concurrency_per_worker": CONCURRENCY,
            "nconnections": NCONNS,
            "file_size_bytes": FILE_SIZE,
            "key_bits": KEY_BITS,
            "use_crt": True,
            "clients": CLIENTS,
            "resumption_rate": RESUMPTION_RATE,
            "flood_rate": FLOOD_RATE,
            "mean_gap_rounds": list(MEAN_GAPS),
            "admission": f"resumption-preferred(max_queue={MAX_QUEUE})",
            "suite_policy": (f"3des/sha -> rc4/md5 at queue depth "
                             f">= {QUEUE_HIGH}"),
            "suite_payoff_ratio": round(
                suite_cost_per_kb(DES_CBC3_SHA)
                / suite_cost_per_kb(RC4_MD5), 6),
        },
        "knee": {
            "offered_intensity_cpr": knee["offered_intensity_cpr"],
            "baseline_throughput_hps": knee["throughput_hps"],
            "mean_gap_rounds": knee["mean_gap_rounds"],
        },
        "points": points,
    }
    # Canonical writer: modeled virtual time is fully deterministic, so a
    # regenerated artifact is byte-identical to the committed one unless a
    # modeled cost actually changed.
    write_json(OUT_PATH, out)
    print(f"\nknee at {knee['offered_intensity_cpr']:.2f} offered "
          f"conns/round; policies beat baseline at every point past it")
    print(f"wrote {OUT_PATH}")
    return out


if __name__ == "__main__":
    main()
