"""Session tickets vs the server-side id cache: memory and churn.

RFC-5077-style tickets move resumption state off the server: the session
is sealed into the ticket the client stores, so the server retains
nothing per client.  This benchmark pins the trade both ways:

* **Memory series** -- the same workload (fixed file, 70% resumption)
  over growing client populations, once against the classic id cache and
  once with tickets.  At every point both modes resume the *same*
  handshakes (equal hit-rate by construction: the client-side pool sees
  an identical offer pattern), but the id-cache server retains one entry
  per distinct client while the ticket server's cache stays at zero
  entries / zero bytes -- flat, verified by the sanity block.

* **Rotation-churn series** -- the ticket key ring rotates every
  ``rotation_interval`` virtual seconds with a one-epoch accept window.
  Shrinking the interval toward the per-transaction time pushes offered
  tickets out of the window: accepted resumptions fall, full-handshake
  fallbacks (rejections) rise, and stale-but-in-window offers show up as
  renewals.  No point may fail a transaction: a bad ticket is never
  fatal.

Run directly (or via ``make bench-tickets``)::

    PYTHONPATH=src python benchmarks/bench_ticket_resumption.py

Writes ``BENCH_ticket_resumption.json`` at the repository root.  Modeled
virtual time only -- host wall-clock never enters the numbers, so the
output is deterministic.
"""

from __future__ import annotations

import json
import pathlib

from repro.crypto import rsa
from repro.perf.baseline import write_json
from repro.ssl.loopback import make_server_identity
from repro.ssl.ticket import TicketKeyRing
from repro.webserver.simulator import WebServerSimulator
from repro.webserver.workload import RequestWorkload

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_ticket_resumption.json"

CLIENT_POPULATIONS = (2, 8, 32)
ROTATION_INTERVALS = (0.02, 0.01, 0.005, 0.002)

NREQUESTS = 24
FILE_SIZE = 2048
RESUMPTION_RATE = 0.7
KEY_BITS = 512
SEED = b"ticket-bench"


def _cache_bytes(cache) -> int:
    """Retained server-side resumption state, in bytes: per live entry,
    the session id, the master secret, and the two timestamp floats."""
    return sum(len(s.session_id) + len(s.master_secret) + 16
               for s in cache._entries.values())


def run_point(key, cert, clients: int, *, tickets: bool,
              rotation_interval: float = 3600.0,
              resumption_rate: float = RESUMPTION_RATE,
              nrequests: int = NREQUESTS) -> dict:
    rsa.reset_error_tables()
    ring = (TicketKeyRing(seed=SEED, rotation_interval=rotation_interval)
            if tickets else None)
    sim = WebServerSimulator(key=key, cert=cert, use_crt=True, seed=SEED,
                             tickets=ring,
                             client_pool_capacity=max(clients, 1))
    workload = RequestWorkload.fixed(FILE_SIZE,
                                     resumption_rate=resumption_rate,
                                     seed=SEED, clients=clients)
    result = sim.run(workload, nrequests)
    cache = sim._session_cache
    return {
        "mode": "tickets" if tickets else "id-cache",
        "clients": clients,
        "rotation_interval_s": rotation_interval if tickets else None,
        "requests_completed": result.requests_completed,
        "failures": result.failures,
        "resumed_handshakes": result.resumed_handshakes,
        "hit_rate": result.resumed_handshakes / nrequests,
        "server_cache_entries": len(cache),
        "server_cache_bytes": _cache_bytes(cache),
        "tickets_minted": result.tickets_minted,
        "tickets_accepted": result.tickets_accepted,
        "tickets_rejected": result.tickets_rejected,
        "tickets_renewed": result.tickets_renewed,
        "client_pool": sim._client_sessions.stats(),
        "wire_bytes": result.wire_bytes,
    }


def main() -> dict:
    key, cert = make_server_identity(KEY_BITS, seed=SEED)

    memory_points = []
    for clients in CLIENT_POPULATIONS:
        pair = {}
        for tickets in (False, True):
            point = run_point(key, cert, clients, tickets=tickets)
            pair[point["mode"]] = point
            memory_points.append(point)
            print(f"{point['mode']:8s} clients={clients:3d}  "
                  f"hit_rate={point['hit_rate']:.2f}  "
                  f"cache_entries={point['server_cache_entries']:3d}  "
                  f"cache_bytes={point['server_cache_bytes']:5d}  "
                  f"wire={point['wire_bytes']}")
        if pair["tickets"]["server_cache_entries"] != 0:
            raise SystemExit("ticket mode retained server-side cache "
                             "state: " + json.dumps(pair["tickets"]))
        if pair["tickets"]["hit_rate"] != pair["id-cache"]["hit_rate"]:
            raise SystemExit(
                f"modes diverged on hit-rate at clients={clients}: "
                f"id-cache {pair['id-cache']['hit_rate']:.3f} vs tickets "
                f"{pair['tickets']['hit_rate']:.3f}")

    id_entries = [p["server_cache_entries"] for p in memory_points
                  if p["mode"] == "id-cache"]
    if not all(b > a for a, b in zip(id_entries, id_entries[1:])):
        raise SystemExit("id-cache footprint did not grow with the "
                         f"client population: {id_entries}")

    churn_points = []
    for interval in ROTATION_INTERVALS:
        point = run_point(key, cert, 2, tickets=True,
                          rotation_interval=interval,
                          resumption_rate=0.9, nrequests=14)
        churn_points.append(point)
        print(f"rotation={interval:.3f}s  "
              f"accepted={point['tickets_accepted']:2d}  "
              f"rejected={point['tickets_rejected']:2d}  "
              f"renewed={point['tickets_renewed']:2d}  "
              f"failures={point['failures']}")
        if point["failures"]:
            raise SystemExit("a rejected ticket failed a transaction: "
                             + json.dumps(point))

    accepted = [p["tickets_accepted"] for p in churn_points]
    rejected = [p["tickets_rejected"] for p in churn_points]
    if not all(b <= a for a, b in zip(accepted, accepted[1:])):
        raise SystemExit(f"accepted tickets did not fall as rotation "
                         f"tightened: {accepted}")
    if not all(b >= a for a, b in zip(rejected, rejected[1:])):
        raise SystemExit(f"rejections did not rise as rotation "
                         f"tightened: {rejected}")
    if not any(p["tickets_renewed"] for p in churn_points):
        raise SystemExit("no rotation point exercised renewal")

    out = {
        "config": {
            "nrequests": NREQUESTS,
            "file_size_bytes": FILE_SIZE,
            "resumption_rate": RESUMPTION_RATE,
            "key_bits": KEY_BITS,
            "use_crt": True,
            "client_populations": list(CLIENT_POPULATIONS),
            "rotation_intervals_s": list(ROTATION_INTERVALS),
        },
        "memory_points": memory_points,
        "rotation_churn": churn_points,
    }
    # Canonical writer: modeled virtual time is fully deterministic, so a
    # regenerated artifact is byte-identical to the committed one unless a
    # modeled cost actually changed.
    write_json(OUT_PATH, out)
    print(f"\nwrote {OUT_PATH}")
    return out


if __name__ == "__main__":
    main()
