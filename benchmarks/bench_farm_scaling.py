"""Farm capacity scaling: workers x cache topology x resumption ratio.

The paper measures how SSL processing collapses the capacity of *one*
server (Table 1); this benchmark runs the farm experiment layered on top
of that methodology: the same HTTPS workload spread over 1, 2 and 4 worker
replicas, under both session-cache topologies and two resumption ratios.

Expected shape (verified by the ``monotone`` block in the output):

* capacity rises monotonically with the worker count for every
  (topology, resumption) series -- workers are replicas, so the makespan
  (the busiest worker's virtual clock) shrinks as the load spreads;
* at resumption > 0 the shared topology meets or beats the partitioned
  one: round-robin scatters resuming clients across workers, and a
  partitioned shard misses sessions minted elsewhere (the
  ``cross_worker_resumptions`` column shows the recovered hits).

Run directly (or via ``make bench-farm``)::

    PYTHONPATH=src python benchmarks/bench_farm_scaling.py

Writes ``BENCH_farm_scaling.json`` at the repository root.  Modeled
virtual time only -- host wall-clock never enters the numbers, so the
output is deterministic.
"""

from __future__ import annotations

import json
import pathlib

from repro.perf.baseline import write_json
from repro.ssl.loopback import make_server_identity
from repro.webserver import (
    PARTITIONED, SHARED, RequestWorkload, ServerFarm,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_farm_scaling.json"

WORKER_COUNTS = (1, 2, 4)
TOPOLOGIES = (PARTITIONED, SHARED)
RESUMPTION_RATES = (0.0, 0.6)

NREQUESTS = 16
CONCURRENCY_PER_WORKER = 2
FILE_SIZE = 2048
# 512-bit CRT keys keep the host wall-clock short; the scaling *shape* is
# key-size independent (every worker pays the same per-handshake cost).
KEY_BITS = 512


def run_point(key, cert, workers: int, topology: str,
              resumption_rate: float) -> dict:
    farm = ServerFarm(workers, topology=topology, key=key, cert=cert,
                      use_crt=True)
    workload = RequestWorkload.fixed(FILE_SIZE,
                                     resumption_rate=resumption_rate)
    result = farm.run(workload, NREQUESTS,
                      concurrency_per_worker=CONCURRENCY_PER_WORKER)
    return {
        "workers": workers,
        "topology": topology,
        "resumption_rate": resumption_rate,
        "capacity_rps": result.capacity_rps(),
        "analytic_rps": result.analytic_capacity_rps(),
        "makespan_s": result.makespan_seconds(),
        "requests_completed": result.requests_completed,
        "failures": result.failures,
        "resumed_handshakes": result.resumed_handshakes,
        "cross_worker_resumptions": result.cross_worker_resumptions,
        "wire_bytes": result.wire_bytes,
        "shard_stats": result.shard_stats,
        "per_worker": [
            {"worker": w.worker, "cycles": w.cycles,
             "requests_completed": w.requests_completed,
             "resumed_handshakes": w.resumed_handshakes}
            for w in result.worker_stats()],
    }


def check_monotone(series: list) -> dict:
    """Capacity must not decrease as workers are added within a series."""
    ordered = sorted(series, key=lambda p: p["workers"])
    capacities = [p["capacity_rps"] for p in ordered]
    return {
        "workers": [p["workers"] for p in ordered],
        "capacities_rps": capacities,
        "monotone": all(b > a for a, b in zip(capacities, capacities[1:])),
    }


def main() -> dict:
    key, cert = make_server_identity(KEY_BITS, seed=b"farm-bench")

    points = []
    for topology in TOPOLOGIES:
        for rate in RESUMPTION_RATES:
            for workers in WORKER_COUNTS:
                point = run_point(key, cert, workers, topology, rate)
                points.append(point)
                print(f"{topology:12s} resume={rate:.1f} "
                      f"workers={workers}  "
                      f"capacity={point['capacity_rps']:8.1f} rps  "
                      f"resumed={point['resumed_handshakes']}  "
                      f"cross={point['cross_worker_resumptions']}")

    monotone = {}
    for topology in TOPOLOGIES:
        for rate in RESUMPTION_RATES:
            series = [p for p in points if p["topology"] == topology
                      and p["resumption_rate"] == rate]
            monotone[f"{topology}-r{rate:.1f}"] = check_monotone(series)
    if not all(m["monotone"] for m in monotone.values()):
        raise SystemExit("capacity did not scale monotonically: "
                         + json.dumps(monotone, indent=2))

    out = {
        "config": {
            "nrequests": NREQUESTS,
            "concurrency_per_worker": CONCURRENCY_PER_WORKER,
            "file_size_bytes": FILE_SIZE,
            "key_bits": KEY_BITS,
            "use_crt": True,
            "policy": "round-robin",
        },
        "points": points,
        "monotone": monotone,
    }
    # Canonical writer: modeled virtual time is fully deterministic, so a
    # regenerated artifact is byte-identical to the committed one unless a
    # modeled cost actually changed.
    write_json(OUT_PATH, out)
    print(f"\nwrote {OUT_PATH}")
    return out


if __name__ == "__main__":
    main()
