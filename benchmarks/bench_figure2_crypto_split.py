"""Figure 2: crypto-library time split versus request file size.

The paper sweeps the requested file size from 1 KB to 32 KB and plots the
share of libcrypto time spent in public-key encryption, private-key
encryption, hashing and other operations.  Public-key work is ~90% at 1 KB
and declines as the bulk phase grows; private-key and hashing shares rise
with size.
"""

from repro.perf import format_table, percent
from repro.webserver import RequestWorkload, WebServerSimulator

SIZES_KB = (1, 2, 4, 8, 16, 32)


def run_sweep(paper_key):
    key, cert = paper_key
    series = {}
    for kb in SIZES_KB:
        sim = WebServerSimulator(key=key, cert=cert, use_crt=False)
        result = sim.run(RequestWorkload.fixed(kb * 1024), 1)
        assert result.failures == 0
        series[kb] = result.crypto_category_shares()
    return series


def test_figure2_crypto_split(benchmark, paper_key, emit):
    series = benchmark.pedantic(run_sweep, args=(paper_key,),
                                rounds=1, iterations=1)

    rows = [(f"{kb} KB", percent(s["public"]), percent(s["private"]),
             percent(s["hash"]), percent(s["other"]))
            for kb, s in series.items()]
    emit(format_table(
        ["request size", "public", "private", "hash", "other"], rows,
        title="Figure 2: time breakdown in the crypto library "
              "(paper: public ~90% at 1 KB, declining with size; "
              "private ~2.4% at 1 KB, growing)"))

    # Shape checks.
    publics = [series[kb]["public"] for kb in SIZES_KB]
    privates = [series[kb]["private"] for kb in SIZES_KB]
    hashes = [series[kb]["hash"] for kb in SIZES_KB]
    assert publics[0] > 0.85                        # ~90% at 1 KB
    assert all(a >= b for a, b in zip(publics, publics[1:]))
    assert all(a <= b for a, b in zip(privates, privates[1:]))
    assert all(a <= b for a, b in zip(hashes, hashes[1:]))
    assert publics[-1] < publics[0] - 0.1           # visible decline by 32 KB
    assert 0.005 < privates[0] < 0.05               # paper: 2.4% at 1 KB
