"""Server capacity under the paper's methodology.

The paper drives the server with "HTTP requests as fast as the server can
handle them" at >90% CPU load.  From the measured ~28M cycles per 1 KB
HTTPS transaction on the 2.26 GHz P4, the implied ceiling is ~80
requests/second -- the right magnitude for secure web servers of that
era, and the reason session resumption and crypto offload mattered.
"""

from repro.perf import format_table
from repro.webserver import (
    LoadSimulator, RequestWorkload, WebServerSimulator, requests_per_second,
)


def measure_cycles(paper_key):
    key, cert = paper_key
    sim = WebServerSimulator(key=key, cert=cert, use_crt=False)
    result = sim.run(RequestWorkload.fixed(1024), 2)
    assert result.failures == 0
    return result.cycles_per_request()


def test_capacity_ceiling(benchmark, paper_key, emit):
    cycles = benchmark.pedantic(measure_cycles, args=(paper_key,),
                                rounds=1, iterations=1)
    ceiling = requests_per_second(cycles)

    sim = LoadSimulator(cycles, think_seconds=0.02)
    sweep = sim.saturation_sweep((1, 2, 4, 8, 32), duration_seconds=5)
    rows = [(r.offered_clients, f"{r.throughput_rps:.1f}",
             f"{100 * r.utilization:.0f}%",
             f"{1000 * r.latency_percentile(0.95):.0f} ms")
            for r in sweep]
    text = format_table(
        ["clients", "req/s", "CPU load", "p95 latency"], rows,
        title=f"Closed-loop load versus the analytic ceiling "
              f"({ceiling:.0f} req/s at {cycles / 1e6:.1f}M "
              f"cycles/request)")
    emit(text)

    # Era-plausible single-P4 HTTPS capacity with full handshakes.
    assert 50 < ceiling < 130
    saturated = sweep[-1]
    assert saturated.utilization > 0.9          # the paper's ">90% load"
    assert saturated.throughput_rps <= ceiling * 1.01
    assert saturated.throughput_rps > 0.85 * ceiling
    # Latency inflates past the knee while throughput stays flat.
    assert sweep[-1].latency_percentile(0.95) > \
        3 * sweep[0].latency_percentile(0.95)
