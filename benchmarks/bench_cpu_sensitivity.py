"""CPU-model sensitivity: do the paper's conclusions survive other cores?

The paper measured one machine.  This bench re-prices every kernel on a
P6-class core (Pentium III era) and a modern wide core, checking which of
the paper's conclusions are microarchitecture-independent:

* the throughput *ordering* (RC4 > hashes > AES > DES > 3DES >> RSA) is a
  property of the algorithms' path lengths, not the core;
* RSA dominating the handshake survives even a core whose multiplier is
  4x cheaper;
* the "AES cannot saturate 1 Gbps" claim, however, is machine-bound: the
  wide core crosses the 125 MB/s line.
"""

from repro.crypto.bench import ALGORITHMS, characteristics
from repro.perf import PENTIUM3, PENTIUM4, WIDE_CORE, format_table

CPUS = (PENTIUM3, PENTIUM4, WIDE_CORE)


def run_matrix():
    return {cpu.name: characteristics(nbytes=8192, rsa_bits=1024, cpu=cpu)
            for cpu in CPUS}


def test_cpu_sensitivity(benchmark, emit):
    matrix = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    rows = []
    for name in ALGORITHMS:
        rows.append((name.upper(),
                     *(f"{matrix[c.name][name].throughput_mbps:.2f}"
                       for c in CPUS),
                     *(f"{matrix[c.name][name].cpi:.2f}" for c in CPUS)))
    emit(format_table(
        ["kernel"] + [f"MB/s {c.name}" for c in CPUS]
        + [f"CPI {c.name}" for c in CPUS],
        rows, title="CPU-model sensitivity of Table 11"))

    for cpu in CPUS:
        t = {k: v.throughput_mbps for k, v in matrix[cpu.name].items()}
        # The ordering is microarchitecture-independent.
        assert t["rc4"] > t["md5"] > t["sha1"] > t["aes"] > t["des"] > \
            t["3des"] > t["rsa"], cpu.name
    # The paper's 1 Gbps claim is machine-bound.
    assert matrix["P4-2.26"]["aes"].throughput_mbps < 125
    assert matrix["wide-3.0"]["aes"].throughput_mbps > 125
    # RSA CPI falls with a cheap multiplier but stays the highest non-hash.
    assert matrix["wide-3.0"]["rsa"].cpi < matrix["P4-2.26"]["rsa"].cpi
