"""Table 2: execution-time breakdown of the SSL handshake, server side.

The paper's ten-step anatomy with per-step totals and the crypto functions
called inside each step.  Its ~18.6M-cycle RSA decryption is consistent
with a non-CRT private operation (see DESIGN.md), which is the mode used
here; the CRT mode appears in the Table 7 benchmark.
"""

from repro.perf import format_table, kcycles
from repro.ssl import DES_CBC3_SHA
from repro.ssl.loopback import profiled_handshake

#: (region, paper kilocycles) -- Table 2's step totals.
PAPER_STEPS = [
    ("init", 348),
    ("get_client_hello", 198),
    ("send_server_hello", 61),
    ("send_server_cert", 239),
    ("send_server_done", 0.6),
    ("get_client_kx", 18_941),
    ("get_finished", 287 + 38 + 0.74),
    ("send_cipher_spec", 2.5),
    ("send_finished", 114),
    ("server_flush", 0.1 + 3.8 + 287),
]


def run_handshake(paper_key):
    key, cert = paper_key
    server_prof, _, _, _ = profiled_handshake(
        key, cert, suite=DES_CBC3_SHA, use_crt=False,
        seed=b"t2")  # Table 2's non-CRT configuration
    key.use_crt = True
    return server_prof


def test_table02_handshake_anatomy(benchmark, paper_key, emit):
    prof = benchmark.pedantic(run_handshake, args=(paper_key,),
                              rounds=1, iterations=1)

    rows = []
    measured_total = 0.0
    for region, paper_kc in PAPER_STEPS:
        cycles = prof.region_cycles(region)
        measured_total += cycles
        node = prof.find_region(region)
        crypto = ""
        if node is not None:
            subs = sorted(node.children.items(),
                          key=lambda kv: -kv[1].inclusive_cycles())
            crypto = ", ".join(
                f"{name}={kcycles(child.inclusive_cycles()):.0f}k"
                for name, child in subs[:3])
        rows.append((region, kcycles(cycles), paper_kc, crypto))
    rows.append(("TOTAL", kcycles(measured_total), 20_540, ""))
    emit(format_table(
        ["step", "measured (kcycles)", "paper (kcycles)",
         "crypto functions (top sub-regions)"],
        rows, title="Table 2: SSL handshake anatomy, server side "
                    "(1024-bit RSA, non-CRT, DES-CBC3-SHA)"))

    # Shape checks.
    kx = prof.region_cycles("get_client_kx")
    assert kx / measured_total > 0.8            # paper: 18.9M / 20.5M = 92%
    assert 13e6 < kx < 23e6                     # paper: 18.9M
    assert 15e6 < measured_total < 26e6         # paper: 20.5M
    # The RSA decryption itself sits inside step 5.
    assert prof.region_cycles("get_client_kx/rsa_private_decryption") > \
        0.9 * kx * 0.9
