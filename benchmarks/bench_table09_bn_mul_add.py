"""Table 9: the instruction sequence of ``bn_mul_add_words``' inner loop.

The paper prints the nine x86 instructions of the kernel's iteration:
4x movl, 1x mull, 2x addl, 2x adcl.  Our kernel model charges exactly that
mix per word; this benchmark verifies the correspondence and times the
real word loop (the genuinely hot code of the whole reproduction).
"""

from repro.bignum import kernels as K
from repro.perf import format_table

#: Table 9 verbatim.
PAPER_SEQUENCE = [
    "movl 0x8(%ebx), %eax",   # load a[i]
    "mull %ebp",              # a[i] * w
    "addl %esi, %eax",        # + carry
    "movl 0x8(%edi), %esi",   # load r[i]
    "adcl $0x0, %edx",        # carry into high word
    "addl %esi, %eax",        # + r[i]
    "adcl $0x0, %edx",        # carry into high word
    "movl %eax, 0x8(%edi)",   # store r[i]
    "movl %edx, %esi",        # carry for next iteration
]

PAPER_COUNTS = {"movl": 4, "mull": 1, "addl": 2, "adcl": 2}


def run_kernel():
    r = [0] * 64
    a = [0xDEADBEEF ^ (i * 0x01010101) & 0xFFFFFFFF for i in range(32)]
    carry = 0
    for w in (0x12345678, 0x9ABCDEF0, 0x0F0F0F0F):
        carry += K.mul_add_words(r, 0, a, 0, 32, w)
    return carry


def test_table09_bn_mul_add_words(benchmark, emit):
    benchmark(run_kernel)

    core = {name: count for name, count in K.MULADD_WORD.counts.items()
            if name in PAPER_COUNTS}
    rows = [(i + 1, instr) for i, instr in enumerate(PAPER_SEQUENCE)]
    text = format_table(["#", "paper's inner-loop instruction"], rows,
                        title="Table 9: bn_mul_add_words inner loop")
    text += ("\nper-word mix charged by our kernel: "
             + ", ".join(f"{k}={v:g}" for k, v in
                         sorted(K.MULADD_WORD.counts.items()))
             + "\n")
    emit(text)

    assert core == {k: float(v) for k, v in PAPER_COUNTS.items()}
    # The 9 core instructions dominate the charged per-word mix; the rest
    # is amortized loop control.
    assert sum(PAPER_COUNTS.values()) / K.MULADD_WORD.total() > 0.8
