"""Table 3: crypto operations during the SSL handshake.

Paper values: public key 90.4%, private key 0.1%, hashing 2.8%, other
1.7% -- crypto in total 95.0% of SSL handshake processing.
"""

from repro.perf import format_table, percent
from repro.perf.categories import crypto_breakdown
from repro.ssl import DES_CBC3_SHA
from repro.ssl.loopback import profiled_handshake

PAPER = {"public": 0.904, "private": 0.001, "hash": 0.028, "other": 0.017,
         "crypto_total": 0.950}


def run_handshake(paper_key):
    key, cert = paper_key
    server_prof, _, _, _ = profiled_handshake(
        key, cert, suite=DES_CBC3_SHA, use_crt=False, seed=b"t3")
    key.use_crt = True
    return server_prof


def test_table03_handshake_crypto(benchmark, paper_key, emit):
    prof = benchmark.pedantic(run_handshake, args=(paper_key,),
                              rounds=1, iterations=1)
    total = prof.total_cycles()
    breakdown = crypto_breakdown(prof)
    crypto_total = sum(breakdown.values())

    rows = [
        ("Public key encryption", percent(breakdown["public"] / total),
         percent(PAPER["public"])),
        ("Private key encryption", percent(breakdown["private"] / total),
         percent(PAPER["private"])),
        ("Hash functions", percent(breakdown["hash"] / total),
         percent(PAPER["hash"])),
        ("Other functions", percent(breakdown["other"] / total),
         percent(PAPER["other"])),
        ("Total crypto operations", percent(crypto_total / total),
         percent(PAPER["crypto_total"])),
    ]
    emit(format_table(
        ["functionality", "measured (% of handshake)", "paper"], rows,
        title="Table 3: crypto operations during the SSL handshake"))

    assert breakdown["public"] / total > 0.80     # paper: 90.4%
    assert crypto_total / total > 0.85            # paper: 95.0%
    assert breakdown["private"] / total < 0.01    # paper: 0.1%
    assert breakdown["hash"] / total < 0.08       # paper: 2.8%
