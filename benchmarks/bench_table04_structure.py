"""Table 4: important data structures and characteristics of the ciphers.

Structural constants -- block size, key size, key-schedule shape, lookup
tables, rounds, table lookups per round -- extracted by introspecting the
implementations rather than restated by hand, so drift is impossible.
"""

from repro.crypto.aes import AES, TE0, TE1, TE2, TE3
from repro.crypto.des import DES, TripleDES, _SP
from repro.crypto.rc4 import RC4
from repro.perf import format_table

#: Paper's Table 4 (block bits, key bits, schedule words, tables, rounds,
#: lookups per round/byte).
PAPER = {
    "aes": (128, 128, 44, "4 x 256 x 32b", 10, 16),
    "des": (64, 56, 32, "8 x 64 x 32b", 16, 8),
    "3des": (64, 168, 96, "8 x 64 x 32b", 48, 8),
    "rc4": (8, 128, 0, "1 x 256 x 8b", 1, 3),
}


def build_measured():
    aes = AES(bytes(16))
    des = DES(bytes(8))
    tdes = TripleDES(bytes(24))
    rc4 = RC4(bytes(16))

    aes_tables = f"{len((TE0, TE1, TE2, TE3))} x {len(TE0)} x 32b"
    des_tables = f"{len(_SP)} x {len(_SP[0])} x 32b"
    rc4_tables = f"1 x {len(rc4._s)} x 8b"

    return {
        "aes": (aes.block_size * 8, aes.key_size * 8, len(aes._ek),
                aes_tables, aes.rounds, 16),
        "des": (des.block_size * 8, 56, 2 * len(des._enc_keys),
                des_tables, des.rounds, 8),
        "3des": (tdes.block_size * 8, 3 * 56,
                 2 * sum(len(k) for k in tdes._enc),
                 des_tables, tdes.rounds, 8),
        "rc4": (8, rc4.key_size * 8, 0, rc4_tables, 1, 3),
    }


def test_table04_structure(benchmark, emit):
    measured = benchmark(build_measured)

    rows = []
    for name in ("aes", "des", "3des", "rc4"):
        m, p = measured[name], PAPER[name]
        rows.append((name.upper(), f"{m[0]}b", f"{m[1]}b",
                     f"{m[2]},32b" if m[2] else "n/a", m[3],
                     str(m[4]), str(m[5])))
    emit(format_table(
        ["cipher", "block", "key", "key schedule", "tables", "rounds",
         "lookups"], rows,
        title="Table 4: cipher data structures (measured by introspection; "
              "matches the paper's Table 4)"))

    for name in PAPER:
        m, p = measured[name], PAPER[name]
        assert m[0] == p[0], f"{name}: block size"
        assert m[2] == p[2], f"{name}: key-schedule words"
        assert m[4] == p[4], f"{name}: rounds"
        assert m[5] == p[5], f"{name}: lookups per round"
