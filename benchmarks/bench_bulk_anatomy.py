"""Bulk-data-transfer anatomy: cipher vs MAC vs record bookkeeping.

Not a numbered table in the paper, but the decomposition behind its
Section 6.2 engine proposal (Figure 6 overlaps exactly these two parts):
for each suite, how an encrypted fragment's cost splits between the
private-key encryption, the MAC hashing, and record-layer bookkeeping.
"""

from repro import perf
from repro.perf import format_table, percent
from repro.ssl import kdf
from repro.ssl.ciphersuites import (
    AES128_SHA, DES_CBC3_SHA, RC4_MD5, RC4_SHA,
)
from repro.ssl.record import ConnectionState, ContentType, KeyMaterial

SUITES = (DES_CBC3_SHA, AES128_SHA, RC4_SHA, RC4_MD5)
FRAGMENT = 16384


def measure_suite(suite):
    block = kdf.key_block(bytes(48), bytes(32), bytes(32),
                          suite.key_material_length())
    mk, kk, ik = suite.mac_key_len, suite.key_len, suite.iv_len
    material = KeyMaterial(block[:mk], block[2 * mk:2 * mk + kk],
                           block[2 * (mk + kk):2 * (mk + kk) + ik])
    state = ConnectionState(suite, material)
    payload = bytes(FRAGMENT)
    p = perf.Profiler()
    with perf.activate(p):
        state.seal(ContentType.APPLICATION_DATA, payload)
    total = p.total_cycles()
    return {
        "total": total,
        "cipher": p.region_cycles("pri_encryption"),
        "mac": p.region_cycles("mac"),
        "other": total - p.region_cycles("pri_encryption")
                 - p.region_cycles("mac"),
    }


def test_bulk_fragment_anatomy(benchmark, emit):
    results = benchmark.pedantic(
        lambda: {s.name: measure_suite(s) for s in SUITES},
        rounds=1, iterations=1)

    rows = []
    for name, r in results.items():
        rows.append((name, f"{r['total'] / FRAGMENT:.1f}",
                     percent(r["cipher"] / r["total"]),
                     percent(r["mac"] / r["total"]),
                     percent(r["other"] / r["total"])))
    emit(format_table(
        ["suite", "cycles/byte", "cipher", "MAC", "record overhead"],
        rows, title=f"Bulk-phase anatomy of one {FRAGMENT}-byte fragment "
                    "(the two parts Figure 6's engine runs in parallel)"))

    tdes = results["DES-CBC3-SHA"]
    aes = results["AES128-SHA"]
    rc4 = results["RC4-MD5"]
    # 3DES: cipher overwhelmingly dominates; the engine's parallel MAC
    # hiding buys little.  RC4-MD5: cipher and MAC are comparable; the
    # overlap buys up to ~2x.
    assert tdes["cipher"] / tdes["total"] > 0.8
    assert aes["cipher"] > aes["mac"]
    assert 0.25 < rc4["mac"] / rc4["total"] < 0.75
    # Record bookkeeping is noise at full fragments for every suite.
    for r in results.values():
        assert r["other"] / r["total"] < 0.05
