"""Figure 1: the SSL protocol flow, as an executable assertion.

The paper's Figure 1 draws the message sequence of session negotiation
and bulk transfer.  This benchmark runs a real handshake through the
passive wire tracer and asserts the exact sequence -- including the
messages the paper's RSA configuration *skips* (ServerKeyExchange,
CertificateRequest), and their reappearance under a DHE suite.
"""

from repro import perf
from repro.crypto.rand import PseudoRandom
from repro.ssl import DES_CBC3_SHA, SslClient, SslServer
from repro.ssl.ciphersuites import EDH_RSA_DES_CBC3_SHA
from repro.ssl.trace import WireTracer, format_trace


def traced_handshake(identity, suite):
    key, cert = identity
    sp, cp = perf.Profiler(), perf.Profiler()
    tracer = WireTracer()
    with perf.activate(sp):
        server = SslServer(key, cert, suites=(suite,),
                           rng=PseudoRandom(b"f1-s"))
    with perf.activate(cp):
        client = SslClient(suites=(suite,), rng=PseudoRandom(b"f1-c"))
        client.start_handshake()
    for _ in range(10):
        with perf.activate(cp):
            c_out = client.pending_output()
        with perf.activate(sp):
            s_out = server.pending_output()
        if not c_out and not s_out:
            break
        if c_out:
            tracer.feed("client", c_out)
            with perf.activate(sp):
                server.receive(c_out)
        if s_out:
            tracer.feed("server", s_out)
            with perf.activate(cp):
                client.receive(s_out)
    assert client.handshake_complete and server.handshake_complete
    with perf.activate(cp):
        client.write(b"encrypted data")
        wire = client.pending_output()
    tracer.feed("client", wire)
    with perf.activate(sp):
        server.receive(wire)
    return tracer


RSA_FLOW = [
    ("client->server", "client_hello"),
    ("server->client", "server_hello"),
    ("server->client", "certificate"),
    ("server->client", "server_hello_done"),
    ("client->server", "client_key_exchange"),
    ("client->server", "change_cipher_spec"),
    ("client->server", "finished (encrypted)"),
    ("server->client", "change_cipher_spec"),
    ("server->client", "finished (encrypted)"),
    ("client->server", "application_data (encrypted)"),
]


def test_figure1_protocol_flow(benchmark, paper_key, emit):
    tracer = benchmark.pedantic(traced_handshake,
                                args=(paper_key, DES_CBC3_SHA),
                                rounds=1, iterations=1)
    flow = [(e.direction, e.description) for e in tracer.events]
    emit(format_trace(tracer.events)
         + "\n(compare the paper's Figure 1: the server_key_exchange and "
           "certificate_request arrows are absent under RSA key "
           "exchange)\n")
    assert flow == RSA_FLOW

    # Under DHE the skipped arrow reappears, exactly where Figure 1 puts it.
    dhe_tracer = traced_handshake(paper_key, EDH_RSA_DES_CBC3_SHA)
    dhe_flow = [(e.direction, e.description) for e in dhe_tracer.events]
    assert ("server->client", "server_key_exchange") in dhe_flow
    assert dhe_flow.index(("server->client", "server_key_exchange")) > \
        dhe_flow.index(("server->client", "certificate"))
