"""Record-size sweep: the small-record tax on the bulk phase.

Figure 2's bulk costs assume full-sized transfers; interactive traffic
(the banking keystrokes of the paper's motivation) rides tiny records
where per-record fixed costs -- the MAC's pads/finalization, padding to a
cipher block, record headers -- dominate.  This sweep quantifies the
crossover: cycles/byte falls ~two orders of magnitude from 16-byte to
16 KB records.
"""

from repro import perf
from repro.perf import format_table
from repro.ssl import kdf
from repro.ssl.ciphersuites import AES128_SHA, DES_CBC3_SHA, RC4_MD5
from repro.ssl.record import ConnectionState, ContentType, KeyMaterial

SIZES = (16, 64, 256, 1024, 4096, 16384)
SUITES = (DES_CBC3_SHA, AES128_SHA, RC4_MD5)


def make_state(suite):
    block = kdf.key_block(bytes(48), bytes(32), bytes(32),
                          suite.key_material_length())
    mk, kk, ik = suite.mac_key_len, suite.key_len, suite.iv_len
    return ConnectionState(suite, KeyMaterial(
        block[:mk], block[2 * mk:2 * mk + kk],
        block[2 * (mk + kk):2 * (mk + kk) + ik]))


def run_sweep():
    out = {}
    for suite in SUITES:
        state = make_state(suite)
        series = []
        for size in SIZES:
            p = perf.Profiler()
            with perf.activate(p):
                state.seal(ContentType.APPLICATION_DATA, bytes(size))
            series.append(p.total_cycles() / size)
        out[suite.name] = series
    return out


def test_record_size_sweep(benchmark, emit):
    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = [(f"{size} B", *(f"{sweep[s.name][i]:.1f}" for s in SUITES))
            for i, size in enumerate(SIZES)]
    emit(format_table(
        ["record size"] + [s.name for s in SUITES], rows,
        title="Cycles per byte versus record size (per-record MAC and "
              "padding overheads amortize only at full fragments)"))

    for suite in SUITES:
        series = sweep[suite.name]
        # Monotone decline toward the asymptotic bulk cost.
        assert all(a > b for a, b in zip(series, series[1:])), suite.name
        # The small-record tax: large for every suite, and the cheaper
        # the bulk cipher, the worse the relative tax.
        assert series[0] > 4 * series[-1], suite.name
    assert sweep["RC4-MD5"][0] > 15 * sweep["RC4-MD5"][-1]
    assert (sweep["RC4-MD5"][0] / sweep["RC4-MD5"][-1]
            > sweep["DES-CBC3-SHA"][0] / sweep["DES-CBC3-SHA"][-1])
    # At 16 bytes the hash-based MAC dominates everything: even RC4-MD5
    # pays dozens of cycles/byte.
    assert sweep["RC4-MD5"][0] > 50
