"""Host-execution speed: fast path vs faithful word/byte-loop backend.

Unlike the other ``bench_*`` modules, this one measures *wall-clock host
time*, not modeled cycles: it quantifies what the native-int bignum kernels
and flattened symmetric/hash cores (see DESIGN.md, "Two-level execution")
buy when actually running the simulator.  Both backends charge bit-identical
modeled cycles -- ``tests/test_fastpath_equivalence.py`` holds that
invariant -- so the only difference worth reporting here is seconds.

Run directly (or via ``make bench-host``)::

    PYTHONPATH=src python benchmarks/bench_host_speed.py

Writes ``BENCH_host_speed.json`` at the repository root:

* ``handshake``: wall-clock per full DES-CBC3-SHA handshake
  (``run_session`` with no application data, 1024-bit RSA identity created
  once outside the timed region), fast vs ``REPRO_FASTPATH=0``;
* ``bulk_*``: application-payload throughput (MB/s) for an echo of a 64 KiB
  payload through the established session, per cipher suite;
* every entry carries the fast/faithful ``speedup`` ratio.
"""

from __future__ import annotations

import json
import pathlib
import platform
import time

from repro import runtime
from repro.crypto import rsa
from repro.perf.baseline import write_json
from repro.ssl.ciphersuites import DES_CBC3_SHA, RC4_MD5
from repro.ssl.loopback import make_server_identity, run_session

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_host_speed.json"

BULK_BYTES = 64 * 1024


def _time_session(data: bytes, suite, key, cert, reps: int) -> float:
    """Best-of-``reps`` wall-clock seconds for one ``run_session`` call."""
    best = float("inf")
    for _ in range(reps):
        rsa.reset_error_tables()  # identical one-time charges every run
        t0 = time.perf_counter()
        run_session(data, suite=suite, key=key, cert=cert)
        best = min(best, time.perf_counter() - t0)
    return best


def _both_backends(data: bytes, suite, key, cert, fast_reps: int,
                   faithful_reps: int) -> dict:
    with runtime.fastpath(True):
        fast = _time_session(data, suite, key, cert, fast_reps)
    with runtime.fastpath(False):
        faithful = _time_session(data, suite, key, cert, faithful_reps)
    return {"fast_s": fast, "faithful_s": faithful,
            "speedup": faithful / fast}


def main() -> dict:
    # The 1024-bit identity is deterministic and expensive; build it once,
    # outside every timed region.
    key, cert = make_server_identity()

    results: dict = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "payload_bytes": BULK_BYTES,
    }

    # Full handshake, no application data: the paper's dominant server cost
    # and the acceptance workload for the fast path.
    hs = _both_backends(b"", DES_CBC3_SHA, key, cert,
                        fast_reps=5, faithful_reps=3)
    results["handshake"] = {"suite": DES_CBC3_SHA.name, **hs}

    # Bulk echo: subtract the handshake to isolate the record-layer time,
    # then report application-payload throughput.
    payload = b"x" * BULK_BYTES
    for suite, label in ((DES_CBC3_SHA, "bulk_3des_sha"),
                         (RC4_MD5, "bulk_rc4_md5")):
        base = _both_backends(b"", suite, key, cert,
                              fast_reps=3, faithful_reps=2)
        full = _both_backends(payload, suite, key, cert,
                              fast_reps=3, faithful_reps=2)
        fast_bulk = max(full["fast_s"] - base["fast_s"], 1e-9)
        faithful_bulk = max(full["faithful_s"] - base["faithful_s"], 1e-9)
        mb = BULK_BYTES / 1e6
        results[label] = {
            "suite": suite.name,
            "fast_s": fast_bulk,
            "faithful_s": faithful_bulk,
            "fast_mb_per_s": mb / fast_bulk,
            "faithful_mb_per_s": mb / faithful_bulk,
            "speedup": faithful_bulk / fast_bulk,
        }

    # Canonical writer (sorted keys, stable float text, trailing newline):
    # regenerating the artifact yields a clean diff against the committed
    # copy even though the wall-clock *values* vary run to run.
    write_json(OUT_PATH, results)
    return results


if __name__ == "__main__":
    res = main()
    print(json.dumps(res, indent=2))
    hs_speedup = res["handshake"]["speedup"]
    print(f"\nhandshake ({res['handshake']['suite']}): "
          f"{res['handshake']['faithful_s'] * 1e3:.1f} ms -> "
          f"{res['handshake']['fast_s'] * 1e3:.1f} ms "
          f"({hs_speedup:.2f}x)")
