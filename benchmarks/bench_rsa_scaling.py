"""RSA key-size scaling beyond the paper's 512/1024-bit pair.

The paper measures two key sizes; this extension sweeps 512/1024/2048 and
checks the CRT cost follows the expected ~n^3 law (word count squared per
Montgomery product x exponent bits), flattened at small sizes by fixed
costs -- the trend that made 1024-bit the painful-but-necessary default
of the era and 2048-bit a server-capacity problem.
"""

from repro.crypto.bench import measure_rsa, rsa_step_breakdown
from repro.perf import format_table

SIZES = (512, 1024, 2048)


def run_sweep():
    return {bits: measure_rsa(bits) for bits in SIZES}


def test_rsa_key_size_scaling(benchmark, emit):
    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for bits in SIZES:
        m = sweep[bits]
        steps = dict(rsa_step_breakdown(m))
        total = sum(steps.values())
        rows.append((f"{bits}b", f"{m.cycles:,.0f}",
                     f"{100 * steps['computation'] / total:.2f}%",
                     f"{sweep[bits].cycles / sweep[SIZES[0]].cycles:.1f}x"))
    emit(format_table(
        ["key", "cycles per private op", "computation share",
         "vs 512-bit"],
        rows, title="RSA private-op cost versus key size (CRT, blinded)"))

    r_1024 = sweep[1024].cycles / sweep[512].cycles
    r_2048 = sweep[2048].cycles / sweep[1024].cycles
    # Doubling the key size costs 5-8x (theory 8x, flattened by fixed
    # costs at the small end; the paper's 512->1024 measured 5.05x).
    assert 4.0 < r_1024 < 8.5
    assert 4.5 < r_2048 < 8.5
    assert r_2048 > r_1024 * 0.9  # fixed costs matter less as n grows
    # Computation share rises with key size (Table 7's 97.0% -> 98.8%).
    shares = [dict(rsa_step_breakdown(sweep[b]))["computation"]
              / sum(dict(rsa_step_breakdown(sweep[b])).values())
              for b in SIZES]
    assert shares[0] < shares[1] < shares[2]
