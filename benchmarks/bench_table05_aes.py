"""Table 5: AES block-operation execution-time breakdown.

Paper: 128-bit key -> 69 / 397 / 96 cycles (12% / 71% / 17%); 256-bit key
-> 69 / 582 / 96 cycles (9% / 78% / 13%).  Only the main-rounds part grows
with key size.
"""

from repro.crypto.aes import AES
from repro.crypto.bench import aes_block_breakdown
from repro.perf import Profiler, activate, format_table, percent

PAPER = {128: (69, 397, 96), 256: (69, 582, 96)}


def measure_block(key_bits):
    """Execute one real block op and cross-check the phase model."""
    p = Profiler()
    with activate(p):
        AES(bytes(key_bits // 8)).encrypt_block(bytes(16))
    return p.functions["AES_encrypt"].cycles


def test_table05_aes_breakdown(benchmark, emit):
    executed_128 = benchmark(measure_block, 128)

    rows = []
    for bits in (128, 256):
        phases = aes_block_breakdown(bits)
        total = sum(c for _, c in phases)
        for (phase, cycles), paper in zip(phases, PAPER[bits]):
            rows.append((f"AES-{bits}", phase, cycles,
                         percent(cycles / total), paper))
        rows.append((f"AES-{bits}", "TOTAL", total, "100%",
                     sum(PAPER[bits])))
    emit(format_table(
        ["key", "phase", "measured (cycles)", "share", "paper (cycles)"],
        rows, title="Table 5: AES block-operation breakdown"))

    # Shape checks.
    for bits in (128, 256):
        phases = aes_block_breakdown(bits)
        total = sum(c for _, c in phases)
        main_share = phases[1][1] / total
        paper_share = PAPER[bits][1] / sum(PAPER[bits])
        assert abs(main_share - paper_share) < 0.07, bits
        assert abs(total - sum(PAPER[bits])) / sum(PAPER[bits]) < 0.2
    # The modelled phases must agree with real executed blocks.
    assert abs(executed_128 - sum(c for _, c in aes_block_breakdown(128))) \
        / executed_128 < 0.05
    # Fixed phases don't change with key size (paper's observation).
    assert aes_block_breakdown(128)[0][1] == aes_block_breakdown(256)[0][1]
