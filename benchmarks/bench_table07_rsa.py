"""Table 7: execution-time breakdown of RSA decryption (512b / 1024b keys).

Paper: the modular-exponentiation computation is 97.01% (512-bit) and
98.85% (1024-bit) of the operation; init / conversions / blinding / block
parsing share the remaining few percent.  1024-bit total: 6.04 M cycles.

Our Montgomery reduction is word-interleaved (2n^2 single-precision
multiplies per modular product) where OpenSSL 0.9.7d's performed two extra
full multiplications (~3n^2), so our absolute totals are ~2/3 of the
paper's at equal key size; the step *shares* are the reproduced shape.
"""

from repro.crypto.bench import measure_rsa, rsa_step_breakdown
from repro.perf import format_table, percent

PAPER = {
    512: {"init": 866, "data_to_bn": 783, "blinding": 14_319,
          "computation": 1_159_628, "bn_to_data": 587,
          "block_parsing": 19_107},
    1024: {"init": 936, "data_to_bn": 1_189, "blinding": 39_783,
           "computation": 5_972_288, "bn_to_data": 1_053,
           "block_parsing": 26_104},
}


def test_table07_rsa_breakdown(benchmark, emit):
    m1024 = benchmark.pedantic(measure_rsa, args=(1024,),
                               rounds=1, iterations=1)
    m512 = measure_rsa(512)

    rows = []
    for bits, m in ((512, m512), (1024, m1024)):
        steps = rsa_step_breakdown(m)
        total = sum(c for _, c in steps)
        for step, cycles in steps:
            rows.append((f"{bits}b", step, cycles,
                         percent(cycles / total), PAPER[bits][step]))
        rows.append((f"{bits}b", "TOTAL", total, "100%",
                     sum(PAPER[bits].values())))
    emit(format_table(
        ["key", "step", "measured (cycles)", "share", "paper (cycles)"],
        rows, title="Table 7: RSA decryption breakdown (CRT, blinded)"))

    for bits, m in ((512, m512), (1024, m1024)):
        steps = dict(rsa_step_breakdown(m))
        total = sum(steps.values())
        assert steps["computation"] / total > 0.92, bits
        for step in ("init", "data_to_bn", "bn_to_data"):
            assert steps[step] / total < 0.02, (bits, step)
    # Scaling 512 -> 1024: paper measures 5.05x.
    ratio = (sum(dict(rsa_step_breakdown(m1024)).values())
             / sum(dict(rsa_step_breakdown(m512)).values()))
    assert 4.0 < ratio < 8.5
    # Absolute magnitude within the documented structural factor.
    assert 3.5e6 < m1024.cycles < 7.5e6           # paper: 6.04M
