"""Figure 3: key-setup share of encryption time versus data size.

Paper: RC4's 256-entry state-table setup is 28.5% of a 1 KB encryption,
versus 1.0-3.6% for the block ciphers; all shares fall below 5% (RC4) and
0.5% (block ciphers) by 8 KB and become negligible at larger sizes.
"""

from repro.crypto.bench import key_setup_shares
from repro.perf import format_table, percent

SIZES = (1024, 2048, 4096, 8192, 16384, 32768)

PAPER_1KB = {"rc4": 0.285, "aes": 0.010, "des": 0.014, "3des": 0.036}


def test_figure3_key_setup(benchmark, emit):
    shares = benchmark.pedantic(key_setup_shares, kwargs={"sizes": SIZES},
                                rounds=1, iterations=1)

    rows = []
    for size in SIZES:
        row = [f"{size // 1024} KB"]
        for name in ("aes", "des", "3des", "rc4"):
            row.append(percent(dict(shares[name])[size]))
        rows.append(tuple(row))
    emit(format_table(
        ["data size", "aes", "des", "3des", "rc4"], rows,
        title="Figure 3: key setup as a share of encryption time "
              "(paper at 1 KB: RC4 28.5%, block ciphers 1.0-3.6%)"))

    at_1k = {name: dict(series)[1024] for name, series in shares.items()}
    at_8k = {name: dict(series)[8192] for name, series in shares.items()}
    # RC4's setup is an order of magnitude above the block ciphers'.
    assert at_1k["rc4"] > 5 * max(at_1k[c] for c in ("aes", "des", "3des"))
    assert abs(at_1k["rc4"] - PAPER_1KB["rc4"]) < 0.08
    for cipher in ("aes", "des", "3des"):
        assert 0.002 < at_1k[cipher] < 0.06, cipher
    # Monotone decline with data size; near-negligible by 8 KB+.
    for name, series in shares.items():
        values = [v for _, v in series]
        assert values == sorted(values, reverse=True), name
    assert at_8k["rc4"] < 0.08
    for cipher in ("aes", "des", "3des"):
        assert at_8k[cipher] < 0.012, cipher
