"""Table 10: MD5 and SHA-1 execution-time breakdown (1024-byte input).

Paper: MD5 -> init 59 / update 6070 / final 550 cycles (update 90.88%);
SHA-1 -> 66 / 9871 / 786 (update 92.05%).
"""

from repro.crypto.bench import hash_phase_breakdown, measure_hash
from repro.perf import format_table, percent

PAPER = {
    "md5": {"Init": 59, "Update": 6070, "Final": 550},
    "sha1": {"Init": 66, "Update": 9871, "Final": 786},
}


def test_table10_hash_breakdown(benchmark, emit):
    benchmark(lambda: measure_hash("sha1", 1024))

    rows = []
    totals = {}
    for name in ("md5", "sha1"):
        phases = hash_phase_breakdown(name, 1024)
        total = sum(c for _, c in phases)
        totals[name] = total
        for phase, cycles in phases:
            rows.append((name.upper(), phase, cycles,
                         percent(cycles / total), PAPER[name][phase]))
        rows.append((name.upper(), "TOTAL", total, "100%",
                     sum(PAPER[name].values())))
    emit(format_table(
        ["hash", "phase", "measured (cycles)", "share", "paper (cycles)"],
        rows, title="Table 10: MD5 / SHA-1 breakdown on 1024 bytes"))

    for name in ("md5", "sha1"):
        phases = dict(hash_phase_breakdown(name, 1024))
        total = sum(phases.values())
        paper_update = PAPER[name]["Update"] / sum(PAPER[name].values())
        assert abs(phases["Update"] / total - paper_update) < 0.06, name
        assert phases["Init"] / total < 0.02, name
    # SHA-1 is the more compute-intensive hash (paper: 10.7k vs 6.7k).
    assert 1.3 < totals["sha1"] / totals["md5"] < 2.0
