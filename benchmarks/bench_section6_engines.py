"""Section 6.2 (Figures 4-6): hardware-support estimates.

The paper proposes, without quantifying: (1) 3-operand ISA support for the
hash kernels, (2) a hardware AES round/block unit performing the sixteen
table lookups in parallel, (3) asynchronous crypto engines running the
cipher and MAC units concurrently.  These benchmarks quantify each
proposal against our instrumented software baselines.

Run directly (or via ``make bench-engines``) the module also measures the
engines *as an execution backend*: the same bulk-heavy HTTPS workload
with and without a crypto-engine pool attached, plus a saturation sweep
showing the capacity knee where the pool starts refusing work and
records fall back to software::

    PYTHONPATH=src python benchmarks/bench_section6_engines.py

Writes ``BENCH_engine_offload.json`` at the repository root through the
canonical writer.  Everything in the artifact is modeled (deterministic);
there are no wall-clock numbers to drift.
"""

import pathlib

import repro.crypto.md5 as md5_mod
import repro.crypto.sha1 as sha1_mod
from repro.crypto import rsa
from repro.engines import (
    EngineDesign, EngineSimulator, OffloadConfig, SoftwareCosts,
    aes_unit_estimate, fragment_latency, isa_estimate, single_engine_config,
    throughput_mbps,
)
from repro.crypto.bench import measure_cipher, measure_hash
from repro.perf import PENTIUM4, baseline, format_table
from repro.ssl.ciphersuites import AES128_SHA
from repro.ssl.loopback import make_server_identity
from repro.webserver import RequestWorkload, WebServerSimulator

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_engine_offload.json"

#: Bulk-heavy point: 32 KiB responses are two back-to-back 16 KiB records,
#: so the record engine sees queueing, not just isolated fragments.
FILE_SIZE = 32768
NREQUESTS = 6
KEY_BITS = 1024   # the paper's identity; non-CRT like its Tables 1-3
SATURATION_SWEEP = (500_000.0, 50_000.0, 10_000.0, 2_000.0, 0.0)


def test_section6_isa_extension(benchmark, emit):
    md5_est = benchmark(isa_estimate, "md5", md5_mod.MD5_BLOCK,
                        md5_mod.MD5_STALL)
    sha_est = isa_estimate("sha1", sha1_mod.SHA1_BLOCK, sha1_mod.SHA1_STALL)

    rows = [
        ("MD5", f"{md5_est.base_instructions:.0f}",
         f"{md5_est.new_instructions:.0f}",
         f"{100 * md5_est.instruction_reduction:.1f}%",
         f"{md5_est.speedup:.2f}x"),
        ("SHA-1", f"{sha_est.base_instructions:.0f}",
         f"{sha_est.new_instructions:.0f}",
         f"{100 * sha_est.instruction_reduction:.1f}%",
         f"{sha_est.speedup:.2f}x"),
    ]
    emit(format_table(
        ["kernel", "instr/block", "with 3-op ISA", "reduction", "speedup"],
        rows, title="Figure 4 proposal: 3-operand logical instructions"),
        name="test_section6_isa_extension")

    assert md5_est.speedup > sha_est.speedup > 1.1


def test_section6_aes_unit(benchmark, emit):
    est = benchmark(aes_unit_estimate, 128)
    est256 = aes_unit_estimate(256)

    rows = []
    for e in (est, est256):
        rows.append((f"AES-{e.key_bits}", f"{e.software_cycles:.0f}",
                     f"{e.round_unit_cycles:.0f}",
                     f"{e.block_unit_cycles:.0f}",
                     f"{e.round_unit_speedup:.1f}x",
                     f"{e.block_unit_speedup:.1f}x",
                     f"{throughput_mbps(e.block_unit_cycles):.0f} MB/s"))
    emit(format_table(
        ["cipher", "sw cycles/blk", "round unit", "block unit",
         "round speedup", "block speedup", "block-unit thr"],
        rows, title="Figure 5 proposal: hardware AES table-lookup unit"),
        name="test_section6_aes_unit")

    assert est.round_unit_speedup > 3
    assert est.block_unit_speedup > 5
    assert throughput_mbps(est.block_unit_cycles) > 125  # saturates 1 Gbps


def test_section6_crypto_engine(benchmark, emit):
    # Software per-byte costs measured from the instrumented kernels.
    aes_m = measure_cipher("aes", 8192)
    sha_m = measure_hash("sha1", 8192)
    software = SoftwareCosts(
        cipher_cycles_per_byte=aes_m.cycles / aes_m.nbytes,
        hash_cycles_per_byte=sha_m.cycles / sha_m.nbytes)

    lat = benchmark(fragment_latency, 1024, software)
    sim1 = EngineSimulator(EngineDesign(units=1)).run([16384] * 32)
    sim4 = EngineSimulator(EngineDesign(units=4)).run([16384] * 32)

    rows = [
        ("software (MAC then encrypt)", f"{lat.software_cycles:.0f}", "-"),
        ("engine, serial units", f"{lat.engine_serial_cycles:.0f}",
         f"{lat.software_cycles / lat.engine_serial_cycles:.1f}x"),
        ("engine, parallel MAC||cipher (Fig 6)",
         f"{lat.engine_parallel_cycles:.0f}",
         f"{lat.parallel_speedup:.1f}x"),
    ]
    text = format_table(
        ["configuration", "cycles per 1 KB fragment", "speedup"],
        rows, title="Figure 6 proposal: asynchronous crypto engine")
    text += (f"\nbulk phase, 32 x 16 KB fragments:"
             f" 1 unit pair -> {sim1.throughput_mbps():.0f} MB/s,"
             f" 4 unit pairs -> {sim4.throughput_mbps():.0f} MB/s"
             f" (scaling {sim1.makespan_cycles / sim4.makespan_cycles:.2f}x,"
             f" utilization {sim4.utilization:.2f})\n")
    emit(text, name="test_section6_crypto_engine")

    assert lat.parallel_speedup > 5
    assert lat.engine_parallel_cycles < lat.engine_serial_cycles
    assert sim4.throughput_mbps() > 3 * sim1.throughput_mbps()


# ---------------------------------------------------------------------------
# Standalone artifact: the engines as an execution backend
# ---------------------------------------------------------------------------

def _run_point(key, cert, engines):
    rsa.reset_error_tables()
    sim = WebServerSimulator(suite=AES128_SHA, key=key, cert=cert,
                             use_crt=False, seed=b"bench-engines",
                             engines=engines)
    result = sim.run(RequestWorkload.fixed(FILE_SIZE), NREQUESTS)
    if result.failures:
        raise SystemExit(f"benchmark run failed {result.failures} requests")
    cycles = result.profiler.total_cycles()
    point = {
        "total_cycles": cycles,
        "cycles_per_request": result.cycles_per_request(),
        "capacity_rps": PENTIUM4.frequency_hz / result.cycles_per_request(),
        "wire_bytes": result.wire_bytes,
    }
    if result.offload is not None:
        snap = result.offload
        attempts = snap["ops"] + snap["fallbacks"]
        point["offload"] = snap
        point["fallback_fraction"] = (
            round(snap["fallbacks"] / attempts, 4) if attempts else 0.0)
    return point


def main() -> dict:
    key, cert = make_server_identity(KEY_BITS, seed=b"bench-engines-id")

    software = _run_point(key, cert, None)
    offload = _run_point(key, cert, single_engine_config())
    speedup = software["cycles_per_request"] / offload["cycles_per_request"]

    # The engines must change the cost model, never the transcript.
    if offload["wire_bytes"] != software["wire_bytes"]:
        raise SystemExit("offload changed the wire transcript")
    if speedup < 2.0:
        raise SystemExit(f"offload capacity gain {speedup:.2f}x < 2x")

    # Capacity knee: tighten the backlog bound until the pool refuses
    # records and capacity degrades toward the software-only number.
    knee = []
    for saturation in SATURATION_SWEEP:
        config = OffloadConfig(units=single_engine_config().units,
                               saturation_cycles=saturation)
        point = _run_point(key, cert, config)
        knee.append({
            "saturation_cycles": saturation,
            "capacity_rps": round(point["capacity_rps"], 3),
            "speedup_vs_software": round(
                software["cycles_per_request"]
                / point["cycles_per_request"], 3),
            "fallback_fraction": point["fallback_fraction"],
            "fallbacks": point["offload"]["fallbacks"],
            "record_ops": point["offload"]["record_ops"],
        })
    if knee[-1]["fallbacks"] <= knee[0]["fallbacks"]:
        raise SystemExit("saturation sweep never produced the knee")
    if knee[-1]["capacity_rps"] > knee[0]["capacity_rps"]:
        raise SystemExit("capacity rose as the pool saturated")

    rows = [(f"{p['saturation_cycles']:.0f}", f"{p['capacity_rps']:.1f}",
             f"{p['speedup_vs_software']:.2f}x",
             f"{100 * p['fallback_fraction']:.1f}%") for p in knee]
    print(format_table(
        ["saturation bound (cycles)", "capacity (req/s)", "vs software",
         "fallback share"],
        rows, title="Offload capacity knee (tightening backlog bound)"))
    print(f"offload-on vs offload-off: {speedup:.2f}x modeled capacity "
          f"({software['cycles_per_request']:.0f} -> "
          f"{offload['cycles_per_request']:.0f} cycles/request)")

    out = {
        "config": {
            "suite": "AES128-SHA",
            "file_size_bytes": FILE_SIZE,
            "nrequests": NREQUESTS,
            "key_bits": KEY_BITS,
            "use_crt": False,
            "engine_pool": "single_engine_config",
            "saturation_sweep": list(SATURATION_SWEEP),
        },
        "software": software,
        "offload": offload,
        "speedup": round(speedup, 3),
        "knee": knee,
    }
    baseline.write_json(OUT_PATH, out)
    print(f"\nwrote {OUT_PATH}")
    return out


if __name__ == "__main__":
    main()
