"""Section 6.2 (Figures 4-6): hardware-support estimates.

The paper proposes, without quantifying: (1) 3-operand ISA support for the
hash kernels, (2) a hardware AES round/block unit performing the sixteen
table lookups in parallel, (3) asynchronous crypto engines running the
cipher and MAC units concurrently.  These benchmarks quantify each
proposal against our instrumented software baselines.
"""

import repro.crypto.md5 as md5_mod
import repro.crypto.sha1 as sha1_mod
from repro.engines import (
    EngineDesign, EngineSimulator, SoftwareCosts, aes_unit_estimate,
    fragment_latency, isa_estimate, throughput_mbps,
)
from repro.crypto.bench import measure_cipher, measure_hash
from repro.perf import format_table


def test_section6_isa_extension(benchmark, emit):
    md5_est = benchmark(isa_estimate, "md5", md5_mod.MD5_BLOCK,
                        md5_mod.MD5_STALL)
    sha_est = isa_estimate("sha1", sha1_mod.SHA1_BLOCK, sha1_mod.SHA1_STALL)

    rows = [
        ("MD5", f"{md5_est.base_instructions:.0f}",
         f"{md5_est.new_instructions:.0f}",
         f"{100 * md5_est.instruction_reduction:.1f}%",
         f"{md5_est.speedup:.2f}x"),
        ("SHA-1", f"{sha_est.base_instructions:.0f}",
         f"{sha_est.new_instructions:.0f}",
         f"{100 * sha_est.instruction_reduction:.1f}%",
         f"{sha_est.speedup:.2f}x"),
    ]
    emit(format_table(
        ["kernel", "instr/block", "with 3-op ISA", "reduction", "speedup"],
        rows, title="Figure 4 proposal: 3-operand logical instructions"),
        name="test_section6_isa_extension")

    assert md5_est.speedup > sha_est.speedup > 1.1


def test_section6_aes_unit(benchmark, emit):
    est = benchmark(aes_unit_estimate, 128)
    est256 = aes_unit_estimate(256)

    rows = []
    for e in (est, est256):
        rows.append((f"AES-{e.key_bits}", f"{e.software_cycles:.0f}",
                     f"{e.round_unit_cycles:.0f}",
                     f"{e.block_unit_cycles:.0f}",
                     f"{e.round_unit_speedup:.1f}x",
                     f"{e.block_unit_speedup:.1f}x",
                     f"{throughput_mbps(e.block_unit_cycles):.0f} MB/s"))
    emit(format_table(
        ["cipher", "sw cycles/blk", "round unit", "block unit",
         "round speedup", "block speedup", "block-unit thr"],
        rows, title="Figure 5 proposal: hardware AES table-lookup unit"),
        name="test_section6_aes_unit")

    assert est.round_unit_speedup > 3
    assert est.block_unit_speedup > 5
    assert throughput_mbps(est.block_unit_cycles) > 125  # saturates 1 Gbps


def test_section6_crypto_engine(benchmark, emit):
    # Software per-byte costs measured from the instrumented kernels.
    aes_m = measure_cipher("aes", 8192)
    sha_m = measure_hash("sha1", 8192)
    software = SoftwareCosts(
        cipher_cycles_per_byte=aes_m.cycles / aes_m.nbytes,
        hash_cycles_per_byte=sha_m.cycles / sha_m.nbytes)

    lat = benchmark(fragment_latency, 1024, software)
    sim1 = EngineSimulator(EngineDesign(units=1)).run([16384] * 32)
    sim4 = EngineSimulator(EngineDesign(units=4)).run([16384] * 32)

    rows = [
        ("software (MAC then encrypt)", f"{lat.software_cycles:.0f}", "-"),
        ("engine, serial units", f"{lat.engine_serial_cycles:.0f}",
         f"{lat.software_cycles / lat.engine_serial_cycles:.1f}x"),
        ("engine, parallel MAC||cipher (Fig 6)",
         f"{lat.engine_parallel_cycles:.0f}",
         f"{lat.parallel_speedup:.1f}x"),
    ]
    text = format_table(
        ["configuration", "cycles per 1 KB fragment", "speedup"],
        rows, title="Figure 6 proposal: asynchronous crypto engine")
    text += (f"\nbulk phase, 32 x 16 KB fragments:"
             f" 1 unit pair -> {sim1.throughput_mbps():.0f} MB/s,"
             f" 4 unit pairs -> {sim4.throughput_mbps():.0f} MB/s"
             f" (scaling {sim1.makespan_cycles / sim4.makespan_cycles:.2f}x,"
             f" utilization {sim4.utilization:.2f})\n")
    emit(text, name="test_section6_crypto_engine")

    assert lat.parallel_speedup > 5
    assert lat.engine_parallel_cycles < lat.engine_serial_cycles
    assert sim4.throughput_mbps() > 3 * sim1.throughput_mbps()
