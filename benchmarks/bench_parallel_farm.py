"""Serial vs process-parallel farm execution: wall-clock speedup at a
fixed, bit-identical modeled result.

The farm's modeled numbers (cycles, capacity, cache behaviour) are
independent of the host execution backend -- that is the determinism
contract pinned by ``tests/test_parallel_farm.py`` and
``tests/test_parallel_shared.py``, re-verified here for every point.
What *does* change with the backend is how long the host takes: this
benchmark times the same farm workload serially and through pools of
1/2/4/8 worker processes -- for **both** cache topologies, since the
shared topology pays an extra round-boundary cache synchronisation
(admissions carry cache entries out, reports carry mutation logs back)
that the partitioned topology does not -- and reports the wall-clock
speedup per topology.

Two caveats make this artifact honest rather than flattering:

* ``host.cpu_count`` / ``host.usable_cpus`` are recorded next to the
  measurements.  Speedup is bounded by the cores the machine actually
  offers: on a single-core host every parallel point degrades to ~1x
  minus IPC overhead, and the committed numbers say so rather than
  hiding it.  Re-run on a multicore host to see the scaling.
* wall-clock figures are the *only* nondeterministic numbers in any
  committed BENCH artifact; they live under ``wall`` keys and a
  regenerated file will differ there (and only there).

Run directly (or via ``make bench-parallel``)::

    PYTHONPATH=src python benchmarks/bench_parallel_farm.py

Writes ``BENCH_parallel_farm.json`` at the repository root through the
canonical writer.
"""

from __future__ import annotations

import os
import pathlib

from repro.crypto import rsa
from repro.perf import baseline
from repro.ssl.loopback import make_server_identity
from repro.webserver import PARTITIONED, SHARED, RequestWorkload, ServerFarm

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_parallel_farm.json"

POOL_SIZES = (0, 1, 2, 4, 8)  # 0 = serial reference
TOPOLOGIES = (PARTITIONED, SHARED)
NWORKERS = 8
NREQUESTS = 24
CONCURRENCY_PER_WORKER = 2
FILE_SIZE = 2048
KEY_BITS = 512
RESUMPTION_RATE = 0.5


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def run_point(key, cert, topology: str, parallel: int) -> dict:
    rsa.reset_error_tables()
    farm = ServerFarm(NWORKERS, topology=topology, key=key, cert=cert,
                      use_crt=True)
    workload = RequestWorkload.fixed(FILE_SIZE,
                                     resumption_rate=RESUMPTION_RATE)
    result = farm.run(workload, NREQUESTS,
                      concurrency_per_worker=CONCURRENCY_PER_WORKER,
                      parallel=parallel)
    signature = baseline.canonical_json(baseline.capture(
        result.merged_profiler(), scenario="bench-parallel-farm",
        extra={"requests_completed": result.requests_completed,
               "failures": result.failures,
               "resumed_handshakes": result.resumed_handshakes,
               "cross_worker_resumptions": result.cross_worker_resumptions,
               "wire_bytes": result.wire_bytes,
               "shard_stats": result.shard_stats}))
    return {
        "topology": topology,
        "requested_pool": parallel,
        "effective_pool": result.parallel_effective,
        "backend": result.backend,
        "wall": {"seconds": round(result.wall_seconds, 6)},
        "modeled": {
            "total_cycles": result.total_cycles(),
            "makespan_s": result.makespan_seconds(),
            "capacity_rps": result.capacity_rps(),
            "requests_completed": result.requests_completed,
            "failures": result.failures,
        },
        "_signature": signature,
    }


def main() -> dict:
    key, cert = make_server_identity(KEY_BITS, seed=b"parallel-bench")
    # Warm the identity once outside the timed region, mirroring the
    # pre-fork warmup the parallel backend itself relies on.
    run_point(key, cert, PARTITIONED, 0)

    points = []
    for topology in TOPOLOGIES:
        reference = None
        signatures = set()
        for pool in POOL_SIZES:
            point = run_point(key, cert, topology, pool)
            signatures.add(point.pop("_signature"))
            if reference is None:
                reference = point
            ref_wall = reference["wall"]["seconds"]
            point["wall"]["speedup_vs_serial"] = round(
                ref_wall / point["wall"]["seconds"], 3) if point["wall"][
                    "seconds"] > 0 else 0.0
            points.append(point)
            print(f"topology={topology:12s} pool={pool}  "
                  f"backend={point['backend']:12s}  "
                  f"wall={point['wall']['seconds']:.3f}s  "
                  f"cycles={point['modeled']['total_cycles']:.0f}")
        if len(signatures) != 1:
            raise SystemExit(
                f"modeled {topology} results diverged across backends -- "
                "the determinism contract is broken")

    out = {
        "config": {
            "nworkers": NWORKERS,
            "nrequests": NREQUESTS,
            "concurrency_per_worker": CONCURRENCY_PER_WORKER,
            "file_size_bytes": FILE_SIZE,
            "key_bits": KEY_BITS,
            "resumption_rate": RESUMPTION_RATE,
            "topologies": list(TOPOLOGIES),
            "pool_sizes": list(POOL_SIZES),
        },
        "host": {
            "cpu_count": os.cpu_count(),
            "usable_cpus": usable_cpus(),
            "note": "wall-clock speedup is bounded by usable_cpus; "
                    "modeled cycles are backend-invariant per topology "
                    "(verified above by signature equality)",
        },
        "modeled_signature_identical_across_backends": True,
        "points": points,
    }
    baseline.write_json(OUT_PATH, out)
    print(f"\nwrote {OUT_PATH}")
    for point in points:
        if point["requested_pool"]:
            print(f"  {point['topology']} pool={point['requested_pool']}: "
                  f"{point['wall']['speedup_vs_serial']}x vs serial")
    return out


if __name__ == "__main__":
    main()
