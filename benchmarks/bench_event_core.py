"""Scheduler work and memory of the discrete-event core vs the scan loop.

The legacy round loop pays O(active) every scheduling round: every live
transaction is stepped (parked ones as charge-free no-ops) and every
round of the virtual clock is executed, including the idle arrival gaps
an :class:`~repro.webserver.overload.AdversarialWorkload`'s Pareto round
clock produces by construction.  The event core
(:mod:`repro.webserver.events`) steps only runnable transactions and
jumps the clock across provably idle rounds.  This benchmark pins down
what that buys, on two arrival shapes, **at bit-identical modeled
signatures** (the whole point of the event core is that no modeled
number moves):

* **sparse flash-crowd arm** -- Pareto arrivals at a long mean gap with
  a 25% handshake-flood overlay.  Almost every round is an empty
  arrival gap, so the win is *rounds-scanned*: the scan loop executes
  the full virtual clock, the event core only the rounds where
  something can happen (>= 5x fewer here).
* **dense Pareto overload arm** -- a resumption-heavy stream in which
  every connection also forces one renegotiation, so a large population
  of handshakes sits parked in the shared batch-RSA queue while a
  trickle of resumed connections keeps the farm busy.  Here the win is
  *transactions-touched*: the scan loop re-steps the parked pool every
  round, the event core never touches a parked transaction (>= 2x fewer
  here).

The touched reduction on any workload is bounded by the bit-identity
contract itself: the legacy loop flushes a non-empty batch queue in the
*same* round nothing progresses, so a parked transaction can only wait
while other transactions keep progressing -- the pool's no-op rounds
can never outnumber the trickle's productive ones by more than the
pool/trickle population ratio, and arrivals that sustain the trickle
also fill (and thus flush) the batch.  The rounds-scanned axis has no
such bound: idle gaps cost the scan loop one full round apiece and the
event core nothing.

The **memory curve** measures streaming workload admission: peak
tracemalloc bytes while draining the full admission path (lazy request
generator -> ``connection_groups`` ->
:class:`~repro.webserver.overload.AcceptQueue`) at 10^4..10^6 requests,
against the old eager materialization (the full request list plus the
grouped copy both run loops used to build up front).  The request
stream is synthesized directly -- ``RequestWorkload``'s deterministic
PRNG charges ~1ms per draw, which prices a 10^6-request stream out of a
benchmark, and the curve measures admission-layer state, not generator
cost.  Streamed peaks stay flat (O(lookahead), independent of stream
length); the eager list grows linearly and is already ~100x worse at
10^5.

Run directly (or via ``make bench-events``)::

    PYTHONPATH=src python benchmarks/bench_event_core.py

Writes ``BENCH_event_core.json`` at the repository root.  Scheduler
counters and signatures are fully modeled (deterministic); the
wall-clock columns are informational host numbers.  The bench pins the
fast host backend (:func:`repro.runtime.fastpath`) regardless of
``REPRO_FASTPATH``: every counter and signature here is
backend-invariant (the perf gate proves that separately, under both
backends), and what this benchmark varies is the *scheduler* core --
running the faithful word-by-word loops underneath would only multiply
the wall clock.
"""

from __future__ import annotations

import pathlib
import time
import tracemalloc

from repro import perf, runtime
from repro.crypto import rsa
from repro.crypto.batch_rsa import generate_batch_keys
from repro.crypto.rand import PseudoRandom
from repro.perf import Profiler
from repro.perf.export import write_json
from repro.ssl.loopback import make_server_identity
from repro.webserver import ServerFarm
from repro.webserver.overload import AcceptQueue, AdversarialWorkload
from repro.webserver.workload import Request, connection_groups

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_event_core.json"

KEY_BITS = 512
SEED = b"evbench"
WORKLOAD_SEED = b"evb"

#: The dense arm needs one batch-member key per parked connection; the
#: default exponent table stops at 8 members, so extend it with the odd
#: primes in order (distinct public exponents are all batching needs).
def _odd_primes(count: int):
    out, candidate = [], 3
    while len(out) < count:
        if candidate % 2 and all(candidate % p for p in out):
            out.append(candidate)
        candidate += 2
    return tuple(out)


#: Sparse flash-crowd arm: long Pareto gaps, 25% handshake floods.
SPARSE = dict(mean_gap=12.0, nrequests=60, concurrency=32, resume=0.4,
              nkeys=8, flood_rate=0.25, clients=24, timeout=8000)
#: Dense Pareto overload arm: resumed trickle + universal renegotiation
#: keeps a ~batch-size pool of handshakes parked in the RSA queue.
DENSE = dict(mean_gap=1.25, nrequests=280, concurrency=200, resume=0.9,
             nkeys=96, reneg_rate=1.0, clients=24, timeout=8000)

#: Acceptance targets (see module docstring for why they differ).
TARGET_SPARSE_ROUNDS = 5.0
TARGET_DENSE_TOUCHED = 2.0

MEMORY_STREAMED = (10_000, 100_000, 1_000_000)
MEMORY_EAGER = (10_000, 100_000)
MEMORY_REQS_PER_CONN = 4


def _signature(res) -> tuple:
    """Everything the perf gate pins, rounded exactly as it does."""
    return (res.requests_completed, res.failures,
            round(res.total_cycles(), 3), res.wire_bytes,
            tuple(round(lat, 9) for lat in res.handshake_latencies),
            res.queue_wait_rounds_total, res.peak_queue_depth,
            res.handshakes_abandoned, res.resumed_handshakes)


def _run_arm_once(events: bool, *, mean_gap: float, nrequests: int,
                  concurrency: int, resume: float, nkeys: int,
                  clients: int, timeout: int, flood_rate: float = 0.0,
                  reneg_rate: float = 0.0) -> tuple:
    rsa.reset_error_tables()
    key, cert = make_server_identity(KEY_BITS, seed=SEED)
    with perf.activate(Profiler()):
        keyset = generate_batch_keys(KEY_BITS, nkeys,
                                     exponents=_odd_primes(nkeys),
                                     rng=PseudoRandom(SEED + b"-batch"))
    farm = ServerFarm(1, key=key, cert=cert, use_crt=True, key_set=keyset,
                      batch_timeout=timeout, seed=SEED)
    workload = AdversarialWorkload.fixed(
        2048, resumption_rate=resume, seed=WORKLOAD_SEED, clients=clients,
        mean_gap_rounds=mean_gap, flood_rate=flood_rate,
        reneg_rate=reneg_rate, reneg_storm=1)
    start = time.perf_counter()
    with runtime.events(events):
        result = farm.run(workload, nrequests,
                          concurrency_per_worker=concurrency)
    wall = time.perf_counter() - start
    stats = [r.scheduler for r in result.results]
    work = {k: sum(s[k] for s in stats) for k in stats[0]}
    work["wall_seconds"] = round(wall, 3)
    return work, _signature(result)


def run_arm(name: str, params: dict) -> dict:
    on, sig_on = _run_arm_once(True, **params)
    off, sig_off = _run_arm_once(False, **params)
    if sig_on != sig_off:
        raise SystemExit(f"{name}: event core changed the modeled "
                         f"signature:\n  on : {sig_on}\n  off: {sig_off}")
    point = {
        "params": params,
        "events_on": on,
        "events_off": off,
        "signatures_identical": True,
        "touched_reduction": round(off["touched"] / on["touched"], 3),
        "rounds_scanned_reduction": round(
            off["rounds_executed"] / on["rounds_executed"], 3),
    }
    print(f"{name:24s} touched {off['touched']:>6} -> {on['touched']:>6} "
          f"({point['touched_reduction']}x)   rounds "
          f"{off['rounds_executed']:>5} -> {on['rounds_executed']:>5} "
          f"({point['rounds_scanned_reduction']}x)   wall "
          f"{off['wall_seconds']}s -> {on['wall_seconds']}s")
    return point


def _memory_requests(nrequests: int):
    """Synthesized request stream with paced arrivals (two connections'
    worth of requests per round), one ``Request`` object at a time."""
    for i in range(nrequests):
        yield Request(path=f"/doc-1024-{i}.html", size_bytes=1024,
                      resumable=bool(i & 1), client_id=i % 32,
                      arrival_round=i // (2 * MEMORY_REQS_PER_CONN))


def measure_streaming_peak(nrequests: int) -> int:
    """Peak bytes while the full lazy admission path drains
    ``nrequests``: generator -> grouper -> AcceptQueue, groups popped
    and dropped the round they release (a maximally-fast farm)."""
    tracemalloc.start()
    queue = AcceptQueue(connection_groups(_memory_requests(nrequests),
                                          MEMORY_REQS_PER_CONN))
    drained = 0
    while queue:
        target = queue.round + 1
        upcoming = queue.next_arrival_round()
        if queue.depth() == 0 and upcoming is not None:
            target = max(target, upcoming)
        queue.begin_round(target)
        while queue.depth():
            drained += len(queue.pop())
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert drained == nrequests, (drained, nrequests)
    return peak


def measure_eager_peak(nrequests: int) -> int:
    """Peak bytes of the old eager materialization (the full request
    list plus the grouped copy both run loops used to build up front)."""
    tracemalloc.start()
    requests = list(_memory_requests(nrequests))
    groups = [requests[i:i + MEMORY_REQS_PER_CONN]
              for i in range(0, len(requests), MEMORY_REQS_PER_CONN)]
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert sum(len(g) for g in groups) == nrequests
    return peak


def main() -> None:
    with runtime.fastpath(True):  # see the module docstring
        arms = {
            "sparse_flash_crowd": run_arm("sparse_flash_crowd", SPARSE),
            "dense_pareto_overload": run_arm("dense_pareto_overload", DENSE),
        }

    streamed = []
    for n in MEMORY_STREAMED:
        peak = measure_streaming_peak(n)
        streamed.append({"requests": n, "peak_bytes": peak})
        print(f"streaming admission  {n:>9,} requests  peak "
              f"{peak / 1024:10.1f} KiB")
    eager = []
    for n in MEMORY_EAGER:
        peak = measure_eager_peak(n)
        eager.append({"requests": n, "peak_bytes": peak})
        print(f"eager materialization {n:>8,} requests  peak "
              f"{peak / 1024:10.1f} KiB")

    # -- sanity: the claims this artifact exists to make ---------------------
    sparse_rounds = arms["sparse_flash_crowd"]["rounds_scanned_reduction"]
    dense_touched = arms["dense_pareto_overload"]["touched_reduction"]
    if sparse_rounds < TARGET_SPARSE_ROUNDS:
        raise SystemExit(
            f"sparse arm scanned only {sparse_rounds}x fewer rounds "
            f"(target >= {TARGET_SPARSE_ROUNDS}x)")
    if dense_touched < TARGET_DENSE_TOUCHED:
        raise SystemExit(
            f"dense arm touched only {dense_touched}x fewer transactions "
            f"(target >= {TARGET_DENSE_TOUCHED}x)")
    flat = streamed[-1]["peak_bytes"] < 2 * streamed[0]["peak_bytes"]
    if not flat:
        raise SystemExit(
            f"streaming admission peak grew with request count: "
            f"{[p['peak_bytes'] for p in streamed]}")
    if streamed[-1]["peak_bytes"] >= eager[-1]["peak_bytes"]:
        raise SystemExit(
            "streaming 10^6-request peak should undercut the eager "
            "10^5-request list")

    write_json(OUT_PATH, {
        "config": {
            "key_bits": KEY_BITS,
            "seed": SEED.decode(),
            "memory_requests_per_connection": MEMORY_REQS_PER_CONN,
            "targets": {
                "sparse_rounds_scanned_reduction_min": TARGET_SPARSE_ROUNDS,
                "dense_touched_reduction_min": TARGET_DENSE_TOUCHED,
                "note": ("touched reductions are bounded near the parked/"
                         "runnable population ratio by the bit-identity "
                         "contract (the legacy loop flushes the batch "
                         "queue the same round nothing progresses); "
                         "rounds-scanned has no such bound -- see the "
                         "module docstring"),
            },
        },
        "arms": arms,
        "memory": {"streaming": streamed, "eager_list": eager,
                   "streaming_flat": flat},
    })
    print(f"wrote {OUT_PATH}")


if __name__ == "__main__":
    main()
