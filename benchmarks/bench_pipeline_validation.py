"""Cross-validation of the cost model by pipeline simulation.

The charged model prices kernels as mix x per-class costs x asserted stall
factor.  Here an *independent* mechanism -- an out-of-order scheduler
simulation over synthetic traces with per-kernel dependency chains, one L1
load port and the P4's unpipelined multiplier -- produces CPIs from first
principles.  Agreement (within ~25%, same ordering) means the asserted
stall factors encode real dependency structure rather than free parameters.
"""

import repro.crypto.aes as aes_mod
import repro.crypto.md5 as md5_mod
import repro.crypto.rc4 as rc4_mod
import repro.crypto.sha1 as sha1_mod
from repro.bignum import kernels as bn_kernels
from repro.perf import PENTIUM4, format_table
from repro.perf.pipeline import simulate_kernel

CASES = {
    "md5": (md5_mod.MD5_BLOCK, md5_mod.MD5_STALL),
    "sha1": (sha1_mod.SHA1_BLOCK, sha1_mod.SHA1_STALL),
    "aes": (aes_mod.AES_ROUND, aes_mod.AES_STALL),
    "rc4": (rc4_mod.RC4_BYTE, rc4_mod.RC4_STALL),
    "rsa": (bn_kernels.MULADD_WORD, bn_kernels.BN_STALL),
}


def run_validation():
    out = {}
    for kernel, (m, stall) in CASES.items():
        sim = simulate_kernel(kernel, m, length=3000)
        out[kernel] = (sim.cpi, PENTIUM4.cpi(m, stall))
    return out


def test_pipeline_cross_validation(benchmark, emit):
    results = benchmark.pedantic(run_validation, rounds=1, iterations=1)

    rows = [(kernel.upper(), f"{sim:.3f}", f"{model:.3f}",
             f"{sim / model:.2f}")
            for kernel, (sim, model) in results.items()]
    emit(format_table(
        ["kernel", "simulated CPI", "charged-model CPI", "ratio"],
        rows, title="Pipeline-simulation cross-validation of the cost "
                    "model (OoO scheduler, 1 load port, unpipelined mull)"))

    for kernel, (sim, model) in results.items():
        assert 0.7 < sim / model < 1.3, kernel
    # Orderings agree: RSA's multiplier pressure tops both; MD5's serial
    # chain beats the table-lookup kernels; SHA-1/RC4 run leanest.
    sim_order = sorted(results, key=lambda k: -results[k][0])
    model_order = sorted(results, key=lambda k: -results[k][1])
    assert sim_order[0] == model_order[0] == "rsa"
    assert sim_order[1] == model_order[1] == "md5"
    assert set(sim_order[3:]) == set(model_order[3:]) == {"rc4", "sha1"}
