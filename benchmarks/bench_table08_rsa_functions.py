"""Table 8: top ten functions in RSA decryption (flat profile).

Paper (1024-bit key): bn_mul_add_words 47.04%, bn_sub_words 22.61%,
BN_from_montgomery 9.47%, bn_add_words 4.92%, BN_usub 3.24%, BN_copy 1.50%,
ERR_load_BN_strings 1.77%, OPENSSL_cleanse 1.59%, BN_sqr 1.04%,
BN_CTX_start 0.77%.

Our flat profile concentrates more weight in bn_mul_add_words (~90%):
with exact attribution, the reduction's inner loop *is* bn_mul_add_words,
whereas Oprofile's sampling on contiguous hand-written assembly smears a
large fraction onto the adjacent bn_sub_words symbol.  The shape check is
therefore membership + rank: bn_mul_add_words #1 by a wide margin, with
the Montgomery machinery next.
"""

from repro.crypto.bench import measure_rsa
from repro.crypto.rsa import reset_error_tables
from repro.perf import format_table, percent

PAPER_TOP10 = [
    ("bn_mul_add_words", 0.4704), ("bn_sub_words", 0.2261),
    ("BN_from_montgomery", 0.0947), ("bn_add_words", 0.0492),
    ("BN_usub", 0.0324), ("BN_copy", 0.0150),
    ("ERR_load_BN_strings", 0.0177), ("OPENSSL_cleanse", 0.0159),
    ("BN_sqr", 0.0104), ("BN_CTX_start", 0.0077),
]


def test_table08_rsa_top_functions(benchmark, emit):
    reset_error_tables()  # cold start, as in the paper's profile
    m = benchmark.pedantic(measure_rsa, args=(1024,), kwargs={"warm": False},
                           rounds=1, iterations=1)
    rows = m.profiler.function_breakdown(top=10)

    paper = dict(PAPER_TOP10)
    table = [(name, percent(share),
              percent(paper[name]) if name in paper else "-")
             for name, _, share in rows]
    emit(format_table(
        ["function", "measured", "paper"], table,
        title="Table 8: top ten functions in RSA decryption (1024-bit)"))

    names = [name for name, _, _ in rows]
    shares = {name: share for name, _, share in rows}
    assert names[0] == "bn_mul_add_words"
    assert shares["bn_mul_add_words"] > 0.45
    # The Montgomery/bignum support machinery populates the top ten.
    for expected in ("bn_sub_words", "BN_from_montgomery", "bn_add_words"):
        assert expected in names, expected
    # Cold-start artifacts the paper's profile also caught.
    assert "ERR_load_BN_strings" in m.profiler.functions
    assert "OPENSSL_cleanse" in m.profiler.functions
