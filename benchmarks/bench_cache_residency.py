"""Cache-residency check for Section 6.1's L1 claim.

"Since all these crypto operations are compute intensive, most of these
move instructions are hits in the L1 cache."  The cost model's low
per-``movl`` prices rest on this; here the claim is *simulated*: each
kernel's table/data access pattern is run through the P4's 8 KB 4-way L1D
model, plus smaller counterfactual caches showing where the working sets
stop fitting.
"""

from repro.perf import format_table, percent
from repro.perf.cachesim import SetAssociativeCache, residency

KERNELS = ("aes", "des", "3des", "rc4", "md5", "sha1", "rsa")
CACHES = ((8192, "8 KB (P4 L1D)"), (4096, "4 KB"), (2048, "2 KB"))


def run_matrix():
    out = {}
    for kernel in KERNELS:
        row = {}
        for size, _ in CACHES:
            cache = SetAssociativeCache(size, 64, 4)
            row[size] = residency(kernel, nbytes=8192, cache=cache).hit_rate
        out[kernel] = row
    return out


def test_cache_residency(benchmark, emit):
    matrix = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    rows = [(k.upper(), *(percent(matrix[k][size]) for size, _ in CACHES))
            for k in KERNELS]
    emit(format_table(
        ["kernel"] + [label for _, label in CACHES], rows,
        title="L1 data-cache hit rates by kernel and cache size "
              "(8 KB column validates the paper's Section 6.1 claim)"))

    # The paper's claim holds at the P4's geometry...
    for kernel in KERNELS:
        assert matrix[kernel][8192] > 0.97, kernel
    # ...and is not vacuous: AES's 4 KB of tables break a 2 KB cache.
    assert matrix["aes"][2048] < 0.8
    # Kernels with tiny working sets are insensitive to cache size.
    for kernel in ("rc4", "md5", "sha1", "rsa"):
        assert matrix[kernel][2048] > 0.97, kernel
