"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not tables from the paper, but quantifications of the knobs the paper's
text turns on qualitatively:

* CRT versus non-CRT RSA (the discrepancy between its Tables 2 and 7);
* blinding on/off (the Brumley-Boneh defence it cites);
* session resumption (Section 4.1: "session re-negotiation ... can avoid
  the public key encryption");
* cipher-suite choice for the bulk phase.
"""

from repro.crypto.bench import measure_rsa
from repro.crypto.rand import PseudoRandom
from repro.perf import format_table
from repro.ssl import (
    AES128_SHA, AES256_SHA, DES_CBC3_SHA, DES_CBC_SHA, RC4_MD5, RC4_SHA,
    SessionCache,
)
from repro.ssl.loopback import run_session


def test_ablation_crt_vs_noncrt(benchmark, emit):
    crt = benchmark.pedantic(measure_rsa, args=(1024, True),
                             rounds=1, iterations=1)
    noncrt = measure_rsa(1024, use_crt=False)

    ratio = noncrt.cycles / crt.cycles
    rows = [("CRT (two half-size exponentiations)", f"{crt.cycles:,.0f}"),
            ("non-CRT (full-width exponentiation)",
             f"{noncrt.cycles:,.0f}"),
            ("ratio", f"{ratio:.2f}x")]
    text = format_table(["mode", "cycles per 1024-bit private op"], rows,
                        title="Ablation: CRT versus non-CRT RSA")
    text += ("\nThe paper's Table 7 (6.04M cycles) matches the CRT path; "
             "its Table 2 handshake entry (18.56M) matches non-CRT.\n")
    emit(text, name="test_ablation_crt_vs_noncrt")
    assert 2.5 < ratio < 5.0


def test_ablation_blinding_cost(benchmark, emit):
    from repro.crypto.rsa import generate_key
    key = generate_key(1024, rng=PseudoRandom(b"ablation-blind"))
    blinded = benchmark.pedantic(measure_rsa, kwargs={"key": key},
                                 rounds=1, iterations=1)
    key.blinding = False
    unblinded = measure_rsa(key=key)
    key.blinding = True

    overhead = blinded.cycles / unblinded.cycles - 1.0
    rows = [("blinded (Brumley-Boneh defence)", f"{blinded.cycles:,.0f}"),
            ("unblinded", f"{unblinded.cycles:,.0f}"),
            ("overhead", f"{100 * overhead:.1f}%")]
    emit(format_table(["mode", "cycles per private op"], rows,
                      title="Ablation: timing-attack blinding cost"),
         name="test_ablation_blinding_cost")
    # Steady-state blinding costs a few percent (paper Table 7: 0.66%
    # plus the pair update; first use is far more expensive).
    assert 0.0 < overhead < 0.15


def test_ablation_session_resumption(benchmark, paper_key, emit):
    key, cert = paper_key
    key.use_crt = False
    cache = SessionCache()

    def full():
        return run_session(b"x" * 1024, key=key, cert=cert,
                           session_cache=cache, seed=b"ablate-full")

    first = benchmark.pedantic(full, rounds=1, iterations=1)
    resumed = run_session(b"x" * 1024, key=key, cert=cert,
                          session_cache=cache, resume=first.session,
                          seed=b"ablate-resumed")
    key.use_crt = True
    assert resumed.server.resumed

    f_cycles = first.server_profiler.total_cycles()
    r_cycles = resumed.server_profiler.total_cycles()
    rows = [("full handshake", f"{f_cycles:,.0f}"),
            ("resumed (abbreviated) handshake", f"{r_cycles:,.0f}"),
            ("saving", f"{f_cycles / r_cycles:.1f}x")]
    emit(format_table(["handshake", "server cycles (incl. 1 KB echo)"],
                      rows, title="Ablation: session resumption "
                      "(Section 4.1's renegotiation observation)"),
         name="test_ablation_session_resumption")
    assert f_cycles / r_cycles > 5


SUITES = (DES_CBC3_SHA, DES_CBC_SHA, AES128_SHA, AES256_SHA, RC4_SHA,
          RC4_MD5)


def test_ablation_cipher_suites_bulk(benchmark, paper_key, emit):
    key, cert = paper_key
    payload = b"b" * 16384

    def sweep():
        out = {}
        for suite in SUITES:
            result = run_session(payload, suite=suite, key=key, cert=cert,
                                 seed=b"suite-" + suite.name.encode())
            prof = result.server_profiler
            bulk = prof.region_cycles("bulk_transfer")
            out[suite.name] = bulk / (2 * len(payload))  # echo: rx + tx
        return out

    per_byte = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [(name, f"{cyc:.1f}",
             f"{2.26e9 / cyc / 1e6:.1f}")
            for name, cyc in sorted(per_byte.items(), key=lambda kv: kv[1])]
    emit(format_table(
        ["cipher suite", "bulk cycles/byte", "implied MB/s"], rows,
        title="Ablation: bulk-transfer cost by cipher suite "
              "(cipher + MAC, record layer included)"),
        name="test_ablation_cipher_suites_bulk")

    assert per_byte["RC4-MD5"] < per_byte["AES128-SHA"] < \
        per_byte["DES-CBC3-SHA"]
    assert per_byte["AES128-SHA"] < per_byte["AES256-SHA"]


def test_ablation_montgomery_reduction(benchmark, emit):
    """Reduction strategy: interleaved (modern) vs separate (OpenSSL 0.9.7).

    The paper's 6.04M-cycle 1024-bit RSA (Table 7) sits between the two:
    0.9.7 performed the two extra full products of the separate strategy
    but accelerated them with Karatsuba/comba kernels.
    """
    inter = benchmark.pedantic(measure_rsa,
                               kwargs={"mont_reduction": "interleaved"},
                               rounds=1, iterations=1)
    sep = measure_rsa(mont_reduction="separate")

    rows = [("interleaved (CIOS, ~2n^2 mults/product)",
             f"{inter.cycles:,.0f}"),
            ("separate (0.9.7-style, ~3n^2 mults/product)",
             f"{sep.cycles:,.0f}"),
            ("paper, Table 7", "6,041,353")]
    emit(format_table(["Montgomery reduction", "cycles per 1024-bit op"],
                      rows, title="Ablation: Montgomery reduction strategy"),
         name="test_ablation_montgomery_reduction")

    assert inter.cycles < 6.04e6 < sep.cycles
    assert 1.4 < sep.cycles / inter.cycles < 2.2


def test_ablation_ssl3_vs_tls10(benchmark, paper_key, emit):
    """Protocol-version ablation: SSLv3 versus TLS 1.0 handshakes.

    The paper ran SSLv3 ("our experiments employ the widely used SSL v3")
    on a library that also offered TLS 1.0; the comparison shows the
    version choice is performance-neutral -- RSA dominates either way.
    """
    from repro.ssl import TLS1_VERSION
    from repro.ssl.loopback import profiled_handshake

    key, cert = paper_key

    def handshake(version):
        sp, _, _, _ = profiled_handshake(key, cert, suite=DES_CBC3_SHA,
                                         version=version, use_crt=False,
                                         seed=b"v")
        return sp.total_cycles()

    ssl3 = benchmark.pedantic(handshake, args=(0x0300,),
                              rounds=1, iterations=1)
    tls10 = handshake(TLS1_VERSION)
    key.use_crt = True

    rows = [("SSLv3 (nested keyed-hash MAC, A/BB/CCC KDF)", f"{ssl3:,.0f}"),
            ("TLS 1.0 (HMAC record MAC, PRF KDF)", f"{tls10:,.0f}"),
            ("ratio", f"{tls10 / ssl3:.3f}x")]
    emit(format_table(["protocol", "server handshake cycles"], rows,
                      title="Ablation: SSLv3 versus TLS 1.0"),
         name="test_ablation_ssl3_vs_tls10")
    assert 0.8 < tls10 / ssl3 < 1.25


def test_ablation_dhe_vs_rsa_kx(benchmark, paper_key, emit):
    """Key-exchange ablation: RSA transport versus ephemeral DH.

    The paper's configuration skips the ServerKeyExchange step ("the
    certificate contains the RSA public key for key exchange, therefore
    the server key exchange message is skipped").  A DHE suite pays that
    step: an ephemeral exponentiation + an RSA signature server-side, and
    a second exponentiation for the shared secret.
    """
    from repro.ssl.ciphersuites import EDH_RSA_DES_CBC3_SHA
    from repro.ssl.loopback import profiled_handshake

    key, cert = paper_key

    def handshake(suite):
        sp, _, _, _ = profiled_handshake(key, cert, suite=suite,
                                         use_crt=False, seed=b"kx")
        return sp

    rsa_prof = benchmark.pedantic(handshake, args=(DES_CBC3_SHA,),
                                  rounds=1, iterations=1)
    dhe_prof = handshake(EDH_RSA_DES_CBC3_SHA)
    key.use_crt = True

    rows = [
        ("RSA key transport (paper's config)",
         f"{rsa_prof.total_cycles():,.0f}", "-"),
        ("DHE-RSA (ephemeral DH + RSA signature)",
         f"{dhe_prof.total_cycles():,.0f}",
         f"skx={dhe_prof.region_cycles('send_server_kx'):,.0f}"),
    ]
    emit(format_table(["key exchange", "server handshake cycles",
                       "server_kx step"], rows,
                      title="Ablation: RSA key transport vs ephemeral DH"),
         name="test_ablation_dhe_vs_rsa_kx")
    assert dhe_prof.region_cycles("send_server_kx") > 1e6


def test_ablation_barrett_vs_montgomery(benchmark, emit):
    """Modular-arithmetic strategy: Barrett/reciprocal vs Montgomery.

    Montgomery owns the RSA hot path (Table 8's bn_mul_add_words flow
    through BN_from_montgomery); Barrett is the generic alternative the
    era library kept for non-odd moduli.  Equal-work comparison on one
    512-bit exponentiation.
    """
    from repro import perf as perf_mod
    from repro.bignum import BigNum, mod_exp, mod_exp_barrett

    m = BigNum.from_int((1 << 512) + 75)
    e = BigNum.from_int((1 << 160) - 1)
    base = BigNum.from_int(0xC0FFEE)

    def run_mont():
        p = perf_mod.Profiler()
        with perf_mod.activate(p):
            mod_exp(base, e, m)
        return p.total_cycles()

    mont = benchmark.pedantic(run_mont, rounds=1, iterations=1)
    p = perf_mod.Profiler()
    with perf_mod.activate(p):
        mod_exp_barrett(base, e, m)
    barrett = p.total_cycles()

    rows = [("Montgomery (interleaved reduction)", f"{mont:,.0f}"),
            ("Barrett / reciprocal", f"{barrett:,.0f}"),
            ("Barrett / Montgomery", f"{barrett / mont:.2f}x")]
    emit(format_table(["strategy", "cycles (512-bit, 160-bit exponent)"],
                      rows,
                      title="Ablation: Barrett versus Montgomery modexp"),
         name="test_ablation_barrett_vs_montgomery")
    assert 1.2 < barrett / mont < 2.0
