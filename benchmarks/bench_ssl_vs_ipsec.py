"""SSL records versus IPsec ESP packets on the same kernels.

The paper's introduction: SSL/TLS and IPsec "have common components for
security issues".  This bench runs the identical instrumented cipher+MAC
kernels through both protections and compares per-byte bulk cost --
showing the common components dominate and the framing differences
(MAC-then-encrypt + chained IV versus encrypt-then-MAC + explicit IV)
are second-order.
"""

from repro import perf
from repro.crypto.rand import PseudoRandom
from repro.ipsec import (
    ESP_3DES_SHA1, ESP_AES128_SHA1, SecurityAssociation, encapsulate,
)
from repro.perf import format_table
from repro.ssl import kdf
from repro.ssl.ciphersuites import AES128_SHA, DES_CBC3_SHA
from repro.ssl.record import ConnectionState, ContentType, KeyMaterial

PAYLOAD = 8192

PAIRS = (
    ("3DES + HMAC/SSLv3-MAC SHA-1", DES_CBC3_SHA, ESP_3DES_SHA1),
    ("AES-128 + SHA-1", AES128_SHA, ESP_AES128_SHA1),
)


def ssl_cost(suite):
    block = kdf.key_block(bytes(48), bytes(32), bytes(32),
                          suite.key_material_length())
    mk, kk, ik = suite.mac_key_len, suite.key_len, suite.iv_len
    state = ConnectionState(suite, KeyMaterial(
        block[:mk], block[2 * mk:2 * mk + kk],
        block[2 * (mk + kk):2 * (mk + kk) + ik]))
    p = perf.Profiler()
    with perf.activate(p):
        state.seal(ContentType.APPLICATION_DATA, bytes(PAYLOAD))
    return p.total_cycles() / PAYLOAD


def esp_cost(suite):
    keys = PseudoRandom(b"esp-bench")
    sa = SecurityAssociation(0x42, suite, keys.bytes(suite.key_len),
                             keys.bytes(suite.auth_key_len))
    rng = PseudoRandom(b"esp-iv")
    p = perf.Profiler()
    with perf.activate(p):
        encapsulate(sa, bytes(PAYLOAD), rng)
    return p.total_cycles() / PAYLOAD


def test_ssl_vs_ipsec(benchmark, emit):
    results = benchmark.pedantic(
        lambda: [(label, ssl_cost(s), esp_cost(e))
                 for label, s, e in PAIRS],
        rounds=1, iterations=1)

    rows = [(label, f"{ssl_c:.1f}", f"{esp_c:.1f}",
             f"{esp_c / ssl_c:.3f}x")
            for label, ssl_c, esp_c in results]
    emit(format_table(
        ["kernels", "SSL record (cycles/B)", "ESP packet (cycles/B)",
         "ESP/SSL"],
        rows, title=f"SSL versus IPsec ESP bulk protection "
                    f"({PAYLOAD}-byte payload)"))

    for label, ssl_c, esp_c in results:
        # Same kernels dominate both: within 15% of each other.
        assert 0.85 < esp_c / ssl_c < 1.15, label
