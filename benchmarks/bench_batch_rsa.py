"""Batch RSA: amortizing the handshake's private-key operation.

The paper identifies the RSA private operation as the dominant handshake
cost (Table 2: ~90% of server handshake cycles at 1024 bits).  Fiat /
Shacham-Boneh batching splits one full private exponentiation across b
ciphertexts encrypted under the same modulus with distinct small public
exponents; the per-connection cost therefore *falls* as concurrent
handshakes allow larger batches to form.

Two views, both at 512-bit keys (the paper's small configuration, chosen
so the full sweep stays fast):

* kernel: amortized ``raw_batch`` cycles per ciphertext vs batch size;
* server: ``get_client_kx`` cycles per connection from the concurrent
  web-server simulator, where the batch queue fills under load.
"""

import pytest

from repro import perf
from repro.bignum import BigNum
from repro.crypto.batch_rsa import BatchRsaDecryptor, generate_batch_keys
from repro.crypto.rand import PseudoRandom
from repro.perf import format_table
from repro.webserver.simulator import WebServerSimulator
from repro.webserver.workload import RequestWorkload

BITS = 512
BATCH_SIZES = (1, 2, 4, 8)
CONNECTIONS = 8


@pytest.fixture(scope="module")
def keyset():
    return generate_batch_keys(BITS, max(BATCH_SIZES),
                               rng=PseudoRandom(b"bench-batch"))


def kernel_cycles_per_op(keyset, batch_size):
    """Amortized raw_batch cost per ciphertext at one batch size."""
    decryptor = BatchRsaDecryptor(keyset)
    rng = PseudoRandom(b"kernel-%d" % batch_size)
    items = [(i, BigNum.from_bytes(rng.bytes(keyset.size)).mod(keyset.n))
             for i in range(batch_size)]
    profiler = perf.Profiler()
    with perf.activate(profiler):
        decryptor.raw_batch(items)
    return profiler.total_cycles() / batch_size


def unbatched_cycles_per_op(keyset):
    """Baseline: the ordinary per-key CRT+blinded private operation."""
    rng = PseudoRandom(b"kernel-plain")
    c = BigNum.from_bytes(rng.bytes(keyset.size)).mod(keyset.n)
    profiler = perf.Profiler()
    with perf.activate(profiler):
        keyset.member(0).raw_private(c)
    return profiler.total_cycles()


def server_kx_cycles_per_conn(keyset, batch_size):
    """get_client_kx cycles per connection under `batch_size` concurrent
    transactions, batching enabled."""
    sim = WebServerSimulator(key_set=keyset, use_crt=True,
                             batch_size=batch_size, batch_timeout=64,
                             seed=b"bench-sim-%d" % batch_size)
    result = sim.run(RequestWorkload.fixed(1024), CONNECTIONS,
                     concurrency=batch_size)
    assert result.failures == 0, result
    assert result.batched_ops == CONNECTIONS
    kx = result.profiler.region_cycles("get_client_kx")
    return kx / result.batched_ops, result


def test_batch_rsa_amortization(benchmark, emit, keyset):
    per_op = {b: kernel_cycles_per_op(keyset, b) for b in BATCH_SIZES}
    plain = unbatched_cycles_per_op(keyset)

    per_conn = {}
    batches = {}
    for b in BATCH_SIZES[:-1]:
        per_conn[b], result = server_kx_cycles_per_conn(keyset, b)
        batches[b] = result.batches
    # The largest configuration doubles as the pytest-benchmark subject.
    per_conn[8], result = benchmark.pedantic(
        server_kx_cycles_per_conn, args=(keyset, 8), rounds=1, iterations=1)
    batches[8] = result.batches

    rows = []
    for b in BATCH_SIZES:
        rows.append((
            b,
            round(per_op[b]),
            f"{per_op[b] / plain:.2f}x",
            round(per_conn[b]),
            f"{per_conn[b] / per_conn[1]:.2f}x",
            " ".join(f"{size}x{n}" for size, n in sorted(batches[b].items())),
        ))
    rows.append(("plain", round(plain), "1.00x", "-", "-", "-"))
    emit(format_table(
        ["batch", "kernel cyc/op", "vs plain",
         "server kx cyc/conn", "vs batch 1", "batches formed"],
        rows,
        title=f"Batch RSA amortization ({BITS}-bit, "
              f"{CONNECTIONS} connections)"))

    # Acceptance: per-connection handshake RSA cost strictly decreases as
    # the batch grows 1 -> 2 -> 4; batch 8 reported and no worse than 1.
    assert per_conn[1] > per_conn[2] > per_conn[4]
    assert per_conn[8] < per_conn[1]
    # Kernel view agrees.
    assert per_op[1] > per_op[2] > per_op[4]
    # Batch size 1 through the queue adds only bookkeeping over a plain
    # private op (it falls back to raw_private).
    assert per_op[1] < 1.2 * plain
    # Batching at 4 must beat the unbatched baseline decisively.
    assert per_op[4] < 0.8 * plain
    # The simulator really formed the batches it was configured for.
    assert batches[4].get(4, 0) >= 1
    assert batches[8].get(8, 0) >= 1
