"""Table 12: top-ten instructions for each crypto operation.

The paper's instruction-mix table, regenerated from the accumulated
per-kernel mixes.  The headline observations it supports:

* ``movl`` is the #1 instruction everywhere except DES/3DES (register
  pressure on the 8-register ISA);
* DES/3DES are ``xorl``-dominated (41.1% / 39.8%);
* RSA is the only kernel with significant ``mull``/``adcl``;
* the top ten cover ~90-99% of dynamic instructions.
"""

from repro.crypto.bench import instruction_mix
from repro.perf import format_table, percent

#: Paper's Table 12, as {kernel: [(mnemonic, share), ...]} (top five shown
#: in the emitted table; full top-ten checked for coverage).
PAPER_TOP5 = {
    "aes": [("movl", .3775), ("xorl", .2509), ("movb", .1152),
            ("andl", .0740), ("shrl", .0411)],
    "des": [("xorl", .4111), ("movb", .1754), ("movl", .1354),
            ("andl", .1352), ("shrl", .0585)],
    "3des": [("xorl", .3980), ("movb", .1876), ("movl", .1349),
             ("andl", .1316), ("shrl", .0625)],
    "rc4": [("movl", .3806), ("andl", .1815), ("addl", .1361),
            ("movb", .0635), ("incl", .0618)],
    "rsa": [("movl", .3717), ("addl", .1625), ("adcl", .1618),
            ("mull", .0610), ("pushl", .0481)],
    "md5": [("movl", .2211), ("addl", .1912), ("xorl", .1858),
            ("leal", .0915), ("roll", .0888)],
    "sha1": [("movl", .2781), ("xorl", .2240), ("addl", .1204),
             ("roll", .1014), ("leal", .0577)],
}


def collect():
    return {name: instruction_mix(name, nbytes=4096)
            for name in PAPER_TOP5}


def test_table12_instruction_mix(benchmark, emit):
    mixes = benchmark.pedantic(collect, rounds=1, iterations=1)

    rows = []
    for name, top in mixes.items():
        measured = dict(top)
        for i, (paper_instr, paper_share) in enumerate(PAPER_TOP5[name]):
            measured_instr, measured_share = top[i] if i < len(top) else \
                ("-", 0.0)
            rows.append((name.upper() if i == 0 else "",
                         f"{measured_instr} {percent(measured_share)}",
                         f"{paper_instr} {percent(paper_share)}"))
    emit(format_table(
        ["kernel", "measured (rank i)", "paper (rank i)"], rows,
        title="Table 12: top instructions per crypto operation "
              "(top five ranks shown)"))

    for name, top in mixes.items():
        measured = dict(top)
        paper = PAPER_TOP5[name]
        # #1 instruction matches the paper.
        assert top[0][0] == paper[0][0], name
        # Every paper top-5 mnemonic appears in our mix with a share within
        # 7 percentage points.
        for instr, share in paper:
            assert instr in measured, (name, instr)
            assert abs(measured[instr] - share) < 0.07, (name, instr)
        # Top-ten coverage ~90-99% as in the paper.
        assert sum(s for _, s in top) > 0.85, name
