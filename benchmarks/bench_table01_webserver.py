"""Table 1: execution-time breakdown of an HTTPS web-server transaction.

Paper values (1 KB page, DES-CBC3-SHA, full handshake per request):
libcrypto 70.83%, vmlinux 17.51%, other 9.00%, httpd 1.84%, libssl 0.82%.
"""

from repro.perf import format_table, percent
from repro.webserver import RequestWorkload, WebServerSimulator

PAPER = {"libcrypto": 0.7083, "libssl": 0.0082, "httpd": 0.0184,
         "vmlinux": 0.1751, "other": 0.0900}


def run_experiment(paper_key):
    key, cert = paper_key
    sim = WebServerSimulator(key=key, cert=cert, use_crt=False)
    return sim.run(RequestWorkload.fixed(1024), 2)


def test_table01_webserver_breakdown(benchmark, paper_key, emit):
    result = benchmark.pedantic(run_experiment, args=(paper_key,),
                                rounds=1, iterations=1)
    assert result.requests_completed == 2 and result.failures == 0

    shares = result.module_shares()
    rows = [(module, percent(shares.get(module, 0.0)), percent(PAPER[module]))
            for module in ("libcrypto", "libssl", "httpd", "vmlinux",
                           "other")]
    emit(format_table(
        ["component", "measured", "paper"], rows,
        title="Table 1: web-server execution-time breakdown (1 KB page)"))

    # Shape checks: SSL processing ~70% of the transaction, dominated by
    # libcrypto; libssl itself negligible.
    assert shares["libcrypto"] + shares["libssl"] > 0.6
    assert shares["libcrypto"] > shares["vmlinux"] > shares["httpd"]
    assert shares["libssl"] < 0.03
    for module, paper_share in PAPER.items():
        assert abs(shares[module] - paper_share) < 0.06, module
