"""Shared fixtures for the experiment benchmarks.

Each ``bench_*.py`` module regenerates one table or figure of the paper
(see DESIGN.md's experiment index).  Benchmarks print their reproduction
table and also write it to ``benchmarks/out/<experiment>.txt`` so the
artifacts survive pytest's output capture; EXPERIMENTS.md is written from
those artifacts.
"""

from __future__ import annotations

import pathlib

import pytest

from repro import perf
from repro.crypto.rand import PseudoRandom
from repro.crypto.rsa import generate_key
from repro.ssl.x509 import make_self_signed

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(autouse=True)
def isolated_profiler():
    """Never leak benchmark charges into the default profiler."""
    with perf.activate(perf.Profiler()) as profiler:
        yield profiler


@pytest.fixture(scope="session")
def paper_key():
    """The paper's server identity: a 1024-bit RSA key + certificate."""
    key = generate_key(1024, rng=PseudoRandom(b"paper-identity"))
    cert = make_self_signed("CN=paper-server", key)
    return key, cert


@pytest.fixture()
def emit(request):
    """Print a report block and persist it under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)

    def _emit(text: str, name: str | None = None) -> None:
        stem = name or request.node.name
        path = OUT_DIR / f"{stem}.txt"
        path.write_text(text)
        print()
        print(text, end="")

    return _emit


def fmt_pct(x: float) -> str:
    return f"{100.0 * x:6.2f}%"
