#!/usr/bin/env python3
"""Explore the anatomy of each cryptographic kernel (paper Section 5-6).

Prints, for every algorithm the paper studies: architectural
characteristics (CPI, path length, throughput), the internal phase
breakdown, and the top of the instruction mix.

    python examples/crypto_anatomy.py [algorithm ...]
"""

import sys

from repro.crypto.bench import (
    ALGORITHMS, aes_block_breakdown, characteristics, des_block_breakdown,
    hash_phase_breakdown, instruction_mix, measure_rsa, rsa_step_breakdown,
)
from repro.perf import format_table, percent


def phase_table(name):
    if name == "aes":
        return "one 16-byte block op", aes_block_breakdown(128)
    if name in ("des", "3des"):
        return "one 8-byte block op", des_block_breakdown(name)
    if name in ("md5", "sha1"):
        return "digest of 1024 bytes", hash_phase_breakdown(name, 1024)
    if name == "rsa":
        return ("one 1024-bit private op",
                rsa_step_breakdown(measure_rsa(1024)))
    return None, None


def main() -> None:
    wanted = sys.argv[1:] or list(ALGORITHMS)
    unknown = set(wanted) - set(ALGORITHMS)
    if unknown:
        raise SystemExit(f"unknown algorithm(s): {sorted(unknown)}; "
                         f"choose from {ALGORITHMS}")

    print("Measuring architectural characteristics (Table 11)...")
    table = characteristics(nbytes=8192, rsa_bits=1024)

    for name in wanted:
        c = table[name]
        print(f"\n{'=' * 60}\n{name.upper()}")
        print(f"  CPI {c.cpi:.2f} | {c.path_length:.1f} instructions/byte "
              f"| {c.throughput_mbps:.2f} MB/s on the modelled P4")

        scope, phases = phase_table(name)
        if phases:
            total = sum(cyc for _, cyc in phases)
            rows = [(phase, f"{cyc:,.0f}", percent(cyc / total))
                    for phase, cyc in phases]
            print(format_table(["phase", "cycles", "share"], rows,
                               title=f"Breakdown of {scope}"))

        rows = [(instr, percent(share))
                for instr, share in instruction_mix(name, nbytes=2048,
                                                    top=6)]
        print(format_table(["instruction", "share"], rows,
                           title="Instruction mix (top 6, Table 12)"))


if __name__ == "__main__":
    main()
