#!/usr/bin/env python3
"""Handshake anatomy: the paper's Figure 1 and Table 2, live.

Prints the protocol message flow of a real SSLv3 handshake (decoding each
record as it crosses the in-memory wire) and then the server-side ten-step
cycle breakdown, with both the CRT and non-CRT RSA configurations.

    python examples/handshake_anatomy.py
"""

from repro import perf
from repro.crypto.rand import PseudoRandom
from repro.perf import format_table, kcycles
from repro.ssl import DES_CBC3_SHA, SslClient, SslServer
from repro.ssl.handshake import HandshakeType
from repro.ssl.loopback import make_server_identity
from repro.ssl.record import ContentType, HEADER_LEN

STEPS = ["init", "get_client_hello", "send_server_hello",
         "send_server_cert", "send_server_done", "get_client_kx",
         "get_finished", "send_cipher_spec", "send_finished",
         "server_flush"]


def describe_records(wire: bytes, encrypted_from: bool) -> list:
    """Decode record headers (and plaintext handshake types) for display."""
    out = []
    pos = 0
    while pos + HEADER_LEN <= len(wire):
        ctype = wire[pos]
        length = int.from_bytes(wire[pos + 3:pos + 5], "big")
        body = wire[pos + HEADER_LEN:pos + HEADER_LEN + length]
        if ctype == ContentType.HANDSHAKE and not encrypted_from:
            out.append(HandshakeType.name(body[0]))
        elif ctype == ContentType.HANDSHAKE:
            out.append("finished (encrypted)")
        elif ctype == ContentType.CHANGE_CIPHER_SPEC:
            out.append("change_cipher_spec")
            encrypted_from = True
        elif ctype == ContentType.ALERT:
            out.append("alert")
        else:
            out.append("application_data")
        pos += HEADER_LEN + length
    return out


def run(use_crt: bool, key, cert, trace: bool):
    server_prof, client_prof = perf.Profiler(), perf.Profiler()
    key.use_crt = use_crt
    with perf.activate(server_prof):
        server = SslServer(key, cert, suites=(DES_CBC3_SHA,),
                           rng=PseudoRandom(b"anatomy-server"))
    with perf.activate(client_prof):
        client = SslClient(suites=(DES_CBC3_SHA,),
                           rng=PseudoRandom(b"anatomy-client"))
        client.start_handshake()

    c_enc = s_enc = False
    while True:
        with perf.activate(client_prof):
            c_out = client.pending_output()
        with perf.activate(server_prof):
            s_out = server.pending_output()
        if not c_out and not s_out:
            break
        if c_out:
            if trace:
                for name in describe_records(c_out, c_enc):
                    print(f"  client -> server : {name}")
                    c_enc = c_enc or name == "change_cipher_spec"
            with perf.activate(server_prof):
                server.receive(c_out)
        if s_out:
            if trace:
                for name in describe_records(s_out, s_enc):
                    print(f"  server -> client : {name}")
                    s_enc = s_enc or name == "change_cipher_spec"
            with perf.activate(client_prof):
                client.receive(s_out)
    assert server.handshake_complete and client.handshake_complete
    return server_prof


def main() -> None:
    key, cert = make_server_identity(1024, seed=b"anatomy")

    print("SSLv3 protocol flow (Figure 1):")
    prof_noncrt = run(use_crt=False, key=key, cert=cert, trace=True)
    prof_crt = run(use_crt=True, key=key, cert=cert, trace=False)

    print()
    rows = []
    for step in STEPS:
        rows.append((step,
                     f"{kcycles(prof_noncrt.region_cycles(step)):,.1f}",
                     f"{kcycles(prof_crt.region_cycles(step)):,.1f}"))
    total_n = sum(prof_noncrt.region_cycles(s) for s in STEPS)
    total_c = sum(prof_crt.region_cycles(s) for s in STEPS)
    rows.append(("TOTAL", f"{kcycles(total_n):,.1f}",
                 f"{kcycles(total_c):,.1f}"))
    print(format_table(
        ["handshake step", "kcycles (non-CRT RSA)", "kcycles (CRT RSA)"],
        rows, title="Table 2 reproduction: server-side handshake steps"))

    kx = prof_noncrt.region_cycles("get_client_kx")
    print(f"RSA key-exchange step: {100 * kx / total_n:.1f}% of the "
          f"handshake (paper: ~92%). CRT cuts the whole handshake "
          f"{total_n / total_c:.1f}x.")


if __name__ == "__main__":
    main()
