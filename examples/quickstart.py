#!/usr/bin/env python3
"""Quickstart: one secure session, measured.

Runs a full SSLv3 handshake (RSA-1024, DES-CBC3-SHA -- the paper's
configuration) between an in-memory client and server, transfers a little
application data, and prints where the server's cycles went.

    python examples/quickstart.py
"""

from repro.perf import format_table, kcycles, percent
from repro.ssl import DES_CBC3_SHA
from repro.ssl.loopback import make_server_identity, run_session


def main() -> None:
    print("Generating a 1024-bit server identity...")
    key, cert = make_server_identity(1024, seed=b"quickstart")

    message = b"GET /account/balance HTTP/1.1\r\n\r\n" * 8
    print(f"Running an SSLv3 session (suite: {DES_CBC3_SHA.name}), "
          f"echoing {len(message)} bytes...")
    result = run_session(message, suite=DES_CBC3_SHA, key=key, cert=cert)
    assert result.echoed == message

    prof = result.server_profiler
    print(f"\nHandshake completed in {result.handshake_flights} flights; "
          f"server spent {prof.total_cycles() / 1e6:.2f} Mcycles "
          f"({prof.cpu.seconds(prof.total_cycles()) * 1e3:.2f} ms on the "
          f"modelled 2.26 GHz Pentium 4).\n")

    rows = [(name, f"{kcycles(cycles):,.1f}", percent(share))
            for name, cycles, share in prof.module_breakdown()]
    print(format_table(["module", "kcycles", "share"], rows,
                       title="Server-side module breakdown"))

    rows = [(name, f"{kcycles(cycles):,.1f}", percent(share))
            for name, cycles, share in prof.function_breakdown(top=8)]
    print(format_table(["function", "kcycles", "share"], rows,
                       title="Top functions (flat profile)"))

    print("The RSA private decryption of the pre-master secret dominates "
          "-- the paper's central observation.")


if __name__ == "__main__":
    main()
