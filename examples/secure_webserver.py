#!/usr/bin/env python3
"""Two HTTPS workloads the paper's introduction motivates.

*Banking / B2C*: many short transactions -- a full handshake per request
and ~1 KB of data, so the session-negotiation phase (RSA) dominates.

*B2B bulk exchange*: long sessions moving tens of kilobytes with session
reuse, so bulk encryption and MAC hashing take over -- "for workloads that
have large request file size or long sessions of data exchange (e.g. B2B
sessions), optimizations should be concentrated on both private key
encryption and public key encryption" (Section 4.1).

    python examples/secure_webserver.py
"""

from repro.perf import format_table, percent
from repro.ssl import DES_CBC3_SHA
from repro.ssl.loopback import make_server_identity
from repro.webserver import RequestWorkload, WebServerSimulator


def run_workload(title, key, cert, workload, nrequests):
    sim = WebServerSimulator(key=key, cert=cert, use_crt=False,
                             suite=DES_CBC3_SHA)
    result = sim.run(workload, nrequests)
    assert result.failures == 0

    print(f"== {title} ==")
    print(f"requests: {result.requests_completed}  "
          f"(resumed handshakes: {result.resumed_handshakes})  "
          f"bytes served: {result.bytes_served:,}  "
          f"cycles/request: {result.cycles_per_request() / 1e6:.1f}M")
    rows = [(module, percent(share))
            for module, share in result.module_shares().items()]
    print(format_table(["module", "share"], rows))
    rows = [(category, percent(share))
            for category, share in result.crypto_category_shares().items()]
    print(format_table(["crypto category", "share of libcrypto"], rows))
    return result


def main() -> None:
    key, cert = make_server_identity(1024, seed=b"webserver-example")

    banking = RequestWorkload.fixed(1024, resumption_rate=0.0,
                                    seed=b"banking")
    b2b = RequestWorkload([(16384, 0.6), (32768, 0.4)],
                          resumption_rate=0.75, seed=b"b2b")

    bank = run_workload("Banking workload (1 KB, full handshakes)",
                        key, cert, banking, 3)
    bulk = run_workload("B2B workload (16-32 KB, 75% session reuse)",
                        key, cert, b2b, 4)

    bank_public = bank.crypto_category_shares()["public"]
    bulk_private = bulk.crypto_category_shares()["private"]
    print("Takeaway: the banking workload is public-key bound "
          f"(public = {bank_public:.0%} of crypto time), while the B2B "
          f"workload shifts weight to the bulk ciphers and MAC "
          f"(private = {bulk_private:.0%}).")


if __name__ == "__main__":
    main()
