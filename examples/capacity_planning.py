#!/usr/bin/env python3
"""Capacity planning: how many HTTPS requests/second can the server take?

Combines the instrumented transaction costs with the analytic capacity
model and the closed-loop load simulation to answer the operations
question behind the paper: given the measured anatomy, what does each
configuration knob buy in requests per second on the 2.26 GHz P4?

    python examples/capacity_planning.py
"""

from repro.perf import PENTIUM4, WIDE_CORE, format_table
from repro.ssl.loopback import make_server_identity
from repro.webserver import (
    LoadSimulator, RequestWorkload, WebServerSimulator, requests_per_second,
)

CONFIGS = [
    # (label, use_crt, resumption_rate, requests_per_connection)
    ("paper baseline: non-CRT RSA, full handshake each", False, 0.0, 1),
    ("CRT RSA", True, 0.0, 1),
    ("CRT + 75% session resumption", True, 0.75, 1),
    ("CRT + resumption + keep-alive (4 req/conn)", True, 0.75, 4),
]


def measure(label, use_crt, resumption, per_conn, key, cert):
    sim = WebServerSimulator(key=key, cert=cert, use_crt=use_crt)
    workload = RequestWorkload.fixed(1024, resumption_rate=resumption,
                                     seed=b"capacity")
    nreq = 4 if per_conn > 1 else 3
    result = sim.run(workload, nreq, requests_per_connection=per_conn)
    assert result.failures == 0
    return result.cycles_per_request()


def main() -> None:
    key, cert = make_server_identity(1024, seed=b"capacity-planning")

    rows = []
    costs = {}
    for label, use_crt, resumption, per_conn in CONFIGS:
        cycles = measure(label, use_crt, resumption, per_conn, key, cert)
        costs[label] = cycles
        rows.append((label, f"{cycles / 1e6:.1f}M",
                     f"{requests_per_second(cycles):.0f}",
                     f"{requests_per_second(cycles, WIDE_CORE):.0f}"))
    print(format_table(
        ["configuration", "cycles/request", f"req/s ({PENTIUM4.name})",
         f"req/s ({WIDE_CORE.name})"],
        rows, title="HTTPS capacity per configuration (1 KB pages)"))

    baseline = costs[CONFIGS[0][0]]
    best = costs[CONFIGS[-1][0]]
    print(f"Configuration headroom: {baseline / best:.1f}x more requests "
          f"per second from CRT + resumption + keep-alive.\n")

    print("Closed-loop saturation (paper methodology: clients as fast as "
          "the server can handle):")
    sim = LoadSimulator(baseline, think_seconds=0.02)
    rows = []
    for n in (1, 2, 8, 32):
        r = sim.run(n, duration_seconds=5)
        rows.append((n, f"{r.throughput_rps:.1f}",
                     f"{100 * r.utilization:.0f}%",
                     f"{1000 * r.latency_percentile(0.95):.0f} ms"))
    print(format_table(
        ["clients", "req/s", "CPU load", "p95 latency"], rows))
    print("Past the knee the server sits at ~100% load -- the paper's "
          "'server load always above 90%' operating point.")


if __name__ == "__main__":
    main()
