#!/usr/bin/env python3
"""Microarchitecture tour: the performance substrate end to end.

For each crypto kernel: the charged-model CPI, an independent pipeline-
simulation CPI, L1 cache residency across cache sizes, and a peek at the
synthetic instruction trace -- everything the paper's VTune/SoftSDV
toolchain produced, regenerated.

    python examples/microarchitecture.py
"""

import repro.crypto.aes as aes_mod
import repro.crypto.md5 as md5_mod
import repro.crypto.rc4 as rc4_mod
import repro.crypto.sha1 as sha1_mod
from repro.bignum import kernels as bn_kernels
from repro.perf import PENTIUM4, format_table, simulate_kernel
from repro.perf.cachesim import SetAssociativeCache, residency
from repro.perf.trace import synthesize_trace, trace_to_text

KERNELS = {
    "md5": (md5_mod.MD5_BLOCK, md5_mod.MD5_STALL),
    "sha1": (sha1_mod.SHA1_BLOCK, sha1_mod.SHA1_STALL),
    "aes": (aes_mod.AES_ROUND, aes_mod.AES_STALL),
    "rc4": (rc4_mod.RC4_BYTE, rc4_mod.RC4_STALL),
    "rsa": (bn_kernels.MULADD_WORD, bn_kernels.BN_STALL),
}


def main() -> None:
    rows = []
    for name, (m, stall) in KERNELS.items():
        model_cpi = PENTIUM4.cpi(m, stall)
        sim = simulate_kernel(name, m, length=3000)
        l1 = residency(name, 8192)
        tiny = residency(name, 8192, SetAssociativeCache(2048, 64, 4))
        rows.append((name.upper(), f"{model_cpi:.3f}", f"{sim.cpi:.3f}",
                     f"{100 * l1.hit_rate:.1f}%",
                     f"{100 * tiny.hit_rate:.1f}%"))
    print(format_table(
        ["kernel", "model CPI", "pipeline-sim CPI", "L1 hits (8 KB)",
         "L1 hits (2 KB)"],
        rows, title="The cost model versus its independent checks"))

    print("A slice of MD5's synthetic instruction trace (SoftSDV-style):")
    print(trace_to_text(synthesize_trace(md5_mod.MD5_BLOCK, 48), width=8))
    print("Note the add/xor/rotate texture with movl register traffic --")
    print("compare Table 12's MD5 column.")


if __name__ == "__main__":
    main()
