#!/usr/bin/env python3
"""An IPsec gateway protecting a packet flow -- SSL's network-layer sibling.

The paper's introduction notes SSL/TLS and IPsec "have common components
for security issues".  This example runs an ESP tunnel over the same
instrumented kernels, pushes a lossy, reordering packet flow through it,
and compares the per-byte protection cost with an SSL record stream.

    python examples/ipsec_gateway.py
"""

from repro import perf
from repro.ipsec import (
    ESP_3DES_SHA1, ESP_AES128_SHA1, ReplayError, establish_tunnel,
)
from repro.perf import format_table
from repro.ssl import kdf
from repro.ssl.ciphersuites import AES128_SHA
from repro.ssl.record import ConnectionState, ContentType, KeyMaterial

PACKET = 1400  # typical MTU-sized inner packet


def main() -> None:
    print("Establishing an ESP tunnel (AES-128 + HMAC-SHA1-96)...")
    gateway_a, gateway_b = establish_tunnel(b"ike-derived-shared-secret",
                                            ESP_AES128_SHA1)

    # Protect a flow of 50 packets; deliver with reordering and drops.
    flow = [f"packet-{i:03d}".encode().ljust(PACKET, b".")
            for i in range(50)]
    profiler = perf.Profiler()
    with perf.activate(profiler):
        protected = [gateway_a.protect(p) for p in flow]

    order = list(range(50))
    for i in range(0, 48, 5):                  # local reordering
        order[i], order[i + 1] = order[i + 1], order[i]
    delivered = [i for i in order if i % 9 != 4]  # ~11% loss

    received = replays = 0
    with perf.activate(profiler):
        for i in delivered:
            try:
                inner = gateway_b.unprotect(protected[i])
                assert inner == flow[i]
                received += 1
            except ReplayError:
                replays += 1
        # An attacker replays three packets verbatim:
        for i in delivered[:3]:
            try:
                gateway_b.unprotect(protected[i])
            except ReplayError:
                replays += 1

    print(f"sent 50, delivered {len(delivered)} (reordered, lossy), "
          f"accepted {received}, replays rejected {replays}\n")

    # Cost comparison with SSL on identical kernels.
    def ssl_cost_per_byte():
        suite = AES128_SHA
        block = kdf.key_block(bytes(48), bytes(32), bytes(32),
                              suite.key_material_length())
        mk, kk, ik = suite.mac_key_len, suite.key_len, suite.iv_len
        state = ConnectionState(suite, KeyMaterial(
            block[:mk], block[2 * mk:2 * mk + kk],
            block[2 * (mk + kk):2 * (mk + kk) + ik]))
        p = perf.Profiler()
        with perf.activate(p):
            state.seal(ContentType.APPLICATION_DATA, bytes(PACKET))
        return p.total_cycles() / PACKET

    def esp_cost_per_byte(suite):
        a, _ = establish_tunnel(b"cost-probe", suite)
        p = perf.Profiler()
        with perf.activate(p):
            a.protect(bytes(PACKET))
        return p.total_cycles() / PACKET

    rows = [
        ("SSL record, AES128-SHA", f"{ssl_cost_per_byte():.1f}"),
        ("ESP packet, AES128+HMAC-SHA1-96",
         f"{esp_cost_per_byte(ESP_AES128_SHA1):.1f}"),
        ("ESP packet, 3DES+HMAC-SHA1-96",
         f"{esp_cost_per_byte(ESP_3DES_SHA1):.1f}"),
    ]
    print(format_table(["protection", "cycles/byte"], rows,
                       title=f"Bulk protection cost ({PACKET}-byte packets)"
                             " -- the 'common components' in numbers"))
    print("Same ciphers, same hashes, same costs: the protection layer's "
          "framing (record vs packet) is second-order, as the paper's "
          "intro implies.")


if __name__ == "__main__":
    main()
