#!/usr/bin/env python3
"""What-if: the paper's Section 6.2 hardware proposals, quantified.

Estimates the effect of (1) 3-operand logical instructions on the hash
kernels, (2) a hardware AES round/block unit, and (3) an asynchronous
crypto engine with a parallel cipher+MAC pipeline, against the
instrumented software baselines.

    python examples/engine_speedup.py
"""

import repro.crypto.md5 as md5_mod
import repro.crypto.sha1 as sha1_mod
from repro.crypto.bench import measure_cipher, measure_hash
from repro.engines import (
    EngineDesign, EngineSimulator, SoftwareCosts, aes_unit_estimate,
    fragment_latency, isa_estimate, throughput_mbps,
)
from repro.perf import format_table


def main() -> None:
    # 1. ISA support (Figure 4).
    rows = []
    for name, mod, stall in (("MD5", md5_mod.MD5_BLOCK, md5_mod.MD5_STALL),
                             ("SHA-1", sha1_mod.SHA1_BLOCK,
                              sha1_mod.SHA1_STALL)):
        est = isa_estimate(name.lower().replace("-", ""), mod, stall)
        rows.append((name, f"{est.base_instructions:.0f}",
                     f"{est.new_instructions:.0f}",
                     f"{est.speedup:.2f}x"))
    print(format_table(
        ["hash", "instr/block", "with 3-operand ISA", "speedup"],
        rows, title="1. ISA support: 3-operand logical instructions"))

    # 2. AES hardware unit (Figure 5).
    rows = []
    for bits in (128, 256):
        est = aes_unit_estimate(bits)
        rows.append((f"AES-{bits}", f"{est.software_cycles:.0f}",
                     f"{est.block_unit_cycles:.0f}",
                     f"{est.block_unit_speedup:.1f}x",
                     f"{throughput_mbps(est.block_unit_cycles):.0f} MB/s"))
    print(format_table(
        ["cipher", "software c/blk", "block unit c/blk", "speedup",
         "hw throughput"],
        rows, title="2. Hardware AES table-lookup unit"))
    print("Software AES cannot saturate 1 Gbps (125 MB/s); "
          "the block unit exceeds it comfortably.\n")

    # 3. Crypto engine (Figure 6), using measured software baselines.
    aes_m = measure_cipher("aes", 8192)
    sha_m = measure_hash("sha1", 8192)
    software = SoftwareCosts(cipher_cycles_per_byte=aes_m.cycles / 8192,
                             hash_cycles_per_byte=sha_m.cycles / 8192)
    lat = fragment_latency(16384, software)
    rows = [("software, MAC then encrypt", f"{lat.software_cycles:,.0f}"),
            ("engine, units serial", f"{lat.engine_serial_cycles:,.0f}"),
            ("engine, MAC || cipher", f"{lat.engine_parallel_cycles:,.0f}")]
    print(format_table(["configuration", "cycles per 16 KB fragment"],
                       rows, title="3. Asynchronous crypto engine"))

    for units in (1, 2, 4, 8):
        sim = EngineSimulator(EngineDesign(units=units)).run([16384] * 64)
        print(f"   {units} unit pair(s): {sim.throughput_mbps():8.0f} MB/s "
              f"(utilization {sim.utilization:.2f})")
    print("\nThroughput scales with parallel unit pairs in the bulk phase, "
          "as the paper anticipates for multi-session servers.")


if __name__ == "__main__":
    main()
