# Convenience targets for the repro-ssl-anatomy reproduction.

.PHONY: install test bench examples artifacts all

install:
	pip install -e .

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

examples:
	for ex in examples/*.py; do echo "== $$ex"; python $$ex > /dev/null && echo OK; done

artifacts:
	pytest tests/ 2>&1 | tee test_output.txt
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

all: install test bench
