# Convenience targets for the repro-ssl-anatomy reproduction.
#
# The package is imported from ./src; every target exports PYTHONPATH so the
# targets work without an editable install (matching how CI invokes pytest).

PY_ENV = PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH}

.PHONY: install test check bench examples artifacts all

install:
	pip install -e .

test:
	$(PY_ENV) pytest tests/

# The tier-1 gate, verbatim: what CI runs against this repository.
check:
	$(PY_ENV) python -m pytest -x -q

bench:
	$(PY_ENV) pytest benchmarks/ --benchmark-only

examples:
	for ex in examples/*.py; do echo "== $$ex"; $(PY_ENV) python $$ex > /dev/null && echo OK; done

artifacts:
	$(PY_ENV) pytest tests/ 2>&1 | tee test_output.txt
	$(PY_ENV) pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

all: install test bench
