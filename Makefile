# Convenience targets for the repro-ssl-anatomy reproduction.
#
# The package is imported from ./src; every target exports PYTHONPATH so the
# targets work without an editable install (matching how CI invokes pytest).

PY_ENV = PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH}

.PHONY: install test check bench bench-host bench-farm bench-parallel \
	bench-engines bench-tickets bench-overload bench-events perf-gate \
	perf-baseline lint examples smoke smoke-wallclock smoke-farm \
	artifacts all

install:
	pip install -e .

test:
	$(PY_ENV) pytest tests/

# The tier-1 gate, verbatim: what CI runs against this repository.
check:
	$(PY_ENV) python -m pytest -x -q

bench:
	$(PY_ENV) pytest benchmarks/ --benchmark-only

# Wall-clock host speed of the fast path vs the faithful reference loops;
# writes BENCH_host_speed.json at the repository root.
bench-host:
	$(PY_ENV) python benchmarks/bench_host_speed.py

# Farm capacity scaling (workers x cache topology x resumption ratio);
# writes BENCH_farm_scaling.json at the repository root.
bench-farm:
	$(PY_ENV) python benchmarks/bench_farm_scaling.py

# Serial vs process-parallel farm wall-clock (pools of 1/2/4/8 workers)
# with modeled-signature identity verified at every point; writes
# BENCH_parallel_farm.json at the repository root.  Speedup is bounded by
# the host's usable cores, which the artifact records.
bench-parallel:
	$(PY_ENV) python benchmarks/bench_parallel_farm.py

# Golden-cycle regression gate: re-captures every registered scenario and
# requires an exact match against the committed baselines/*.json.  CI runs
# this under both REPRO_FASTPATH=1 and =0; the report file is uploaded as
# an artifact when the gate fails.
# Crypto-engine offload backend: the same bulk-heavy HTTPS workload with
# and without a Section 6.2 engine pool, plus the saturation sweep showing
# the software-fallback knee; writes BENCH_engine_offload.json at the
# repository root (fully modeled -- deterministic, no wall-clock keys).
bench-engines:
	$(PY_ENV) python benchmarks/bench_section6_engines.py

# Stateless session tickets vs the server-side id cache: cache memory at
# equal hit-rate across client populations, plus the key-rotation churn
# curve; writes BENCH_ticket_resumption.json at the repository root
# (fully modeled -- deterministic).
bench-tickets:
	$(PY_ENV) python benchmarks/bench_ticket_resumption.py

# Capacity-vs-offered-load knee curves under hostile traffic (handshake
# floods, bursty arrivals), with and without the admission + suite-
# downgrade policies; writes BENCH_overload.json at the repository root
# (fully modeled -- deterministic).
bench-overload:
	$(PY_ENV) python benchmarks/bench_overload.py

# Discrete-event scheduler core vs the legacy scan loop: rounds-scanned
# and transactions-touched reductions on sparse/dense Pareto arrivals at
# bit-identical signatures, plus the flat streaming-admission memory
# curve; writes BENCH_event_core.json at the repository root.
bench-events:
	$(PY_ENV) python benchmarks/bench_event_core.py

perf-gate:
	$(PY_ENV) python -m repro.tools.perfgate --check --report perf_gate_report.txt

# Re-record the baselines after an *intentional* modeled-cost change.
# Commit the resulting baselines/*.json diff alongside the change and call
# out the moved tables in the PR description.
perf-baseline:
	$(PY_ENV) python -m repro.tools.perfgate --record

# Mirrors CI's lint job.  ruff is optional locally (the container image
# may not carry it); compileall is the no-dependency floor.
lint:
	python -m compileall -q src
	@command -v ruff >/dev/null 2>&1 && ruff check . \
		|| echo "ruff not installed; skipped (CI runs it)"

examples:
	for ex in examples/*.py; do echo "== $$ex"; $(PY_ENV) python $$ex > /dev/null && echo OK; done

# Host wall-clock smokes (not collected by pytest: the tier-1 gate pins
# modeled numbers, these intentionally measure the host).  CI runs them
# via this target; they work locally the same way.
smoke-wallclock:
	$(PY_ENV) python tests/smoke/smoke_wallclock.py

smoke-farm:
	$(PY_ENV) python tests/smoke/smoke_farm.py

smoke: smoke-wallclock smoke-farm

artifacts: bench-overload bench-events
	$(PY_ENV) pytest tests/ 2>&1 | tee test_output.txt
	$(PY_ENV) pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

all: install test bench
